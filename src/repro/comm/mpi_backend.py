"""CPU-initiated MPI-style halo exchange: serialized pulses with staging.

Structurally mirrors the GROMACS GPU-aware MPI path of Fig. 1: for every
pulse, in strict global order, all ranks (1) run a *pack* kernel into a send
staging buffer, (2) block in ``MPI_Sendrecv`` with their two ring neighbours,
(3) run an *unpack* kernel from the receive staging buffer.  Each of these
stages corresponds to a CPU-GPU synchronization in the real code — the
latency cost the paper eliminates; here the structure is what the timing
layer models, while this class provides the functional data path.

Forces go in reverse order with accumulation at the coordinate sender's
``index_map`` (GROMACS' scatter-accumulate unpack).
"""

from __future__ import annotations

import numpy as np

from repro.comm.base import HaloBackend, register_backend
from repro.dd.exchange import ClusterState
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER


@register_backend("mpi")
class MpiBackend(HaloBackend):
    """Serialized staged exchange through explicit send/recv buffers."""

    def __init__(self) -> None:
        self._send_buf: list[list[np.ndarray]] = []
        self._recv_buf: list[list[np.ndarray]] = []
        # Counters used by tests and the timing layer.
        self.n_sendrecv = 0
        self.bytes_sent = 0

    def bind(self, cluster: ClusterState) -> None:
        plan = cluster.plan
        dtype = cluster.system.dtype
        self._send_buf = [
            [np.empty((p.send_size, 3), dtype=dtype) for p in rp.pulses]
            for rp in plan.ranks
        ]
        self._recv_buf = [
            [np.empty((p.recv_size, 3), dtype=dtype) for p in rp.pulses]
            for rp in plan.ranks
        ]

    # -- transport -------------------------------------------------------------

    def _sendrecv(
        self, cluster: ClusterState, pid: int, payload: list[np.ndarray], reverse: bool
    ) -> list[np.ndarray]:
        """Ring sendrecv: every rank sends one buffer, receives one buffer.

        ``reverse=False``: rank r's payload goes to its ``send_rank``
        (coordinate direction).  ``reverse=True``: to its ``recv_rank``
        (force direction).
        """
        plan = cluster.plan
        out: list[np.ndarray] = [None] * len(plan.ranks)  # type: ignore[list-item]
        for rp in plan.ranks:
            p = rp.pulses[pid]
            target = p.recv_rank if reverse else p.send_rank
            if out[target] is not None:
                raise AssertionError(f"pulse {pid}: two messages for rank {target}")
            out[target] = payload[rp.rank]
            self.n_sendrecv += 1
            self.bytes_sent += payload[rp.rank].nbytes
            direction = "f" if reverse else "x"
            METRICS.counter("comm.pulses", backend="mpi", dir=direction).inc()
            METRICS.counter("comm.bytes", backend="mpi", dir=direction).inc(
                payload[rp.rank].nbytes
            )
        return out

    # -- coordinates ------------------------------------------------------------

    def exchange_coordinates(self, cluster: ClusterState, on_pulse=None) -> None:
        plan = cluster.plan
        with TRACER.span("comm.mpi.halo_x", cat="comm", pulses=plan.n_pulses):
            self._exchange_coordinates(cluster, on_pulse)

    def _exchange_coordinates(self, cluster: ClusterState, on_pulse=None) -> None:
        plan = cluster.plan
        for pid in range(plan.n_pulses):
            # Pack kernels (one per rank; a CPU wait precedes the MPI call).
            for rp in plan.ranks:
                p = rp.pulses[pid]
                buf = self._send_buf[rp.rank][pid]
                np.take(cluster.local_pos[rp.rank], p.index_map, axis=0, out=buf)
                buf += p.coord_shift.astype(buf.dtype)
            delivered = self._sendrecv(
                cluster, pid, [self._send_buf[r][pid] for r in range(len(plan.ranks))], reverse=False
            )
            # Unpack kernels (contiguous halo append: a plain copy).
            for rp in plan.ranks:
                p = rp.pulses[pid]
                self._recv_buf[rp.rank][pid][:] = delivered[rp.rank]
                cluster.local_pos[rp.rank][
                    p.atom_offset : p.atom_offset + p.recv_size
                ] = self._recv_buf[rp.rank][pid]
            if on_pulse is not None:
                # Every rank's inbound pulse pid is unpacked at this point.
                for rp in plan.ranks:
                    on_pulse(rp.rank, pid)

    # -- forces --------------------------------------------------------------------

    def exchange_forces(self, cluster: ClusterState) -> None:
        plan = cluster.plan
        with TRACER.span("comm.mpi.halo_f", cat="comm", pulses=plan.n_pulses):
            self._exchange_forces(cluster)

    def _exchange_forces(self, cluster: ClusterState) -> None:
        plan = cluster.plan
        for pid in range(plan.n_pulses - 1, -1, -1):
            for rp in plan.ranks:
                p = rp.pulses[pid]
                buf = self._recv_buf[rp.rank][pid]
                buf[:] = cluster.local_forces[rp.rank][
                    p.atom_offset : p.atom_offset + p.recv_size
                ]
            delivered = self._sendrecv(
                cluster, pid, [self._recv_buf[r][pid] for r in range(len(plan.ranks))], reverse=True
            )
            for rp in plan.ranks:
                p = rp.pulses[pid]
                np.add.at(cluster.local_forces[rp.rank], p.index_map, delivered[rp.rank])
