"""Cooperative task scheduler for emulating concurrent GPU kernels.

The fused NVSHMEM kernels of the paper run one threadblock group per pulse,
all concurrently, synchronizing only through signals.  We emulate that
concurrency with generator-based tasks: a task yields a *predicate* when it
must wait (an acquire-wait on a signal); the scheduler resumes tasks whose
predicates hold, in a seeded-random order each round.

Randomized scheduling is the point: property tests run the same exchange
under many interleavings and assert bit-identical results — evidence that
the dependency partitioning and signaling protocol (not scheduling luck)
guarantee correctness.  Construction without an explicit ``rng`` self-seeds
from :data:`DEFAULT_SEED`, so every run is a reproducible interleaving
without caller boilerplate; pass ``np.random.default_rng(seed)`` to explore
others.

When no task can advance, the scheduler invokes ``on_stall`` (e.g. NVSHMEM
proxy progress delivering delayed inter-node puts); if that yields nothing
either, a :class:`DeadlockError` with per-task diagnostics is raised.

Fault injection (see :mod:`repro.chaos`) hooks the scheduler through the
class attribute ``_default_chaos``: when set, a runnable task is only
resumed if the chaos state's ``allow_task`` admits it, and stalls consult
``tick_stall`` before ``on_stall`` so injected delays cannot be mistaken
for protocol deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Iterable

import numpy as np

from repro.obs.metrics import METRICS

#: Seed used when ``CooperativeScheduler`` is constructed without an rng.
#: Documented so "the default interleaving" is a well-defined, citable
#: schedule: ``np.random.default_rng(DEFAULT_SEED)``.
DEFAULT_SEED = 0x5EED


class DeadlockError(RuntimeError):
    """All tasks blocked and no external progress is possible."""


@dataclass
class _TaskState:
    name: str
    gen: Generator
    predicate: Callable[[], bool] | None = None
    done: bool = False


class CooperativeScheduler:
    """Round-based cooperative executor with randomized task order."""

    #: Installed by :class:`repro.chaos.inject.ChaosInjector`; consulted at
    #: run() time so schedulers created before or after injection both see it.
    _default_chaos = None

    def __init__(self, rng: np.random.Generator | None = None, max_rounds: int = 100_000):
        self.rng = rng if rng is not None else np.random.default_rng(DEFAULT_SEED)
        self.max_rounds = max_rounds
        self.rounds_used = 0

    def run(
        self,
        tasks: Iterable[tuple[str, Generator]],
        on_stall: Callable[[], bool] | None = None,
    ) -> int:
        """Drive all task generators to completion; returns rounds used."""
        chaos = type(self)._default_chaos
        states = [_TaskState(name=n, gen=g) for n, g in tasks]
        # Prime every task to its first wait point.
        for st in states:
            self._resume(st)
        rounds = 0
        while any(not st.done for st in states):
            rounds += 1
            if rounds > self.max_rounds:
                raise DeadlockError(self._diagnose(states, "round limit exceeded"))
            order = np.arange(len(states))
            self.rng.shuffle(order)
            progressed = False
            held = False
            for k in order:
                st = states[k]
                if st.done:
                    continue
                if st.predicate is None or st.predicate():
                    if chaos is not None and not chaos.allow_task(st.name):
                        held = True
                        continue
                    self._resume(st)
                    progressed = True
            if not progressed:
                # Injected holds/hidden signals are progress-in-waiting, not
                # deadlock: drain them before consulting the proxy.
                if held or (chaos is not None and chaos.tick_stall()):
                    continue
                if on_stall is not None and on_stall():
                    continue
                raise DeadlockError(self._diagnose(states, "no runnable task"))
        self.rounds_used = rounds
        METRICS.histogram("comm.sched.rounds").observe(rounds)
        return rounds

    @staticmethod
    def _resume(st: _TaskState) -> None:
        try:
            st.predicate = next(st.gen)
        except StopIteration:
            st.done = True
            st.predicate = None

    @staticmethod
    def _diagnose(states: list[_TaskState], reason: str) -> str:
        blocked = [st.name for st in states if not st.done]
        return f"scheduler deadlock ({reason}); blocked tasks: {blocked}"
