"""Thread-MPI style halo exchange: event-driven direct DMA copies.

GROMACS' built-in thread-MPI runs all ranks as threads of one process, so
GPU halo exchange becomes cudaMemcpyAsync between peer device buffers,
enqueued on streams with GPU-event dependencies and *no* CPU-GPU
synchronization (Sec. 2.2).  Functionally the data path is a direct
peer-to-peer copy per pulse: pack on the sender, DMA into the receiver's
halo region, no staging — which is what we reproduce, with per-pulse event
bookkeeping that the timing layer reuses.

Restriction reproduced from the real system: thread-MPI only works within a
single process (one node); binding a multi-node topology raises.
"""

from __future__ import annotations

import numpy as np

from repro.comm.base import HaloBackend, register_backend
from repro.dd.exchange import ClusterState
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER


@register_backend("threadmpi")
class ThreadMpiBackend(HaloBackend):
    """Direct peer DMA copies with event-ordered pulses."""

    def __init__(self, pes_per_node: int | None = None):
        self.pes_per_node = pes_per_node
        self.n_copies = 0
        self.bytes_copied = 0

    def bind(self, cluster: ClusterState) -> None:
        n = cluster.n_ranks
        ppn = self.pes_per_node or n
        if ppn < n:
            raise RuntimeError(
                f"thread-MPI is single-node only: {n} ranks but "
                f"{ppn} per node (use the mpi or nvshmem backend)"
            )

    def exchange_coordinates(self, cluster: ClusterState, on_pulse=None) -> None:
        plan = cluster.plan
        with TRACER.span("comm.threadmpi.halo_x", cat="comm", pulses=plan.n_pulses):
            for pid in range(plan.n_pulses):
                # Pack kernels on every rank (sender-side gather into a launch
                # buffer), then peer DMA copies; pulse p+1's packs depend on
                # pulse p's copy events — enforced here by the loop order.
                packed = []
                for rp in plan.ranks:
                    p = rp.pulses[pid]
                    buf = cluster.local_pos[rp.rank][p.index_map]
                    packed.append(buf + p.coord_shift.astype(buf.dtype))
                for rp in plan.ranks:
                    p = rp.pulses[pid]
                    dp = plan.ranks[p.send_rank].pulses[pid]
                    dest = cluster.local_pos[p.send_rank]
                    dest[dp.atom_offset : dp.atom_offset + dp.recv_size] = packed[rp.rank]
                    self.n_copies += 1
                    self.bytes_copied += packed[rp.rank].nbytes
                    METRICS.counter("comm.pulses", backend="threadmpi", dir="x").inc()
                    METRICS.counter("comm.bytes", backend="threadmpi", dir="x").inc(
                        packed[rp.rank].nbytes
                    )
                if on_pulse is not None:
                    # All peer copies for pulse pid have landed on every rank.
                    for rp in plan.ranks:
                        on_pulse(rp.rank, pid)

    def exchange_forces(self, cluster: ClusterState) -> None:
        plan = cluster.plan
        with TRACER.span("comm.threadmpi.halo_f", cat="comm", pulses=plan.n_pulses):
            for pid in range(plan.n_pulses - 1, -1, -1):
                staged = []
                for rp in plan.ranks:
                    p = rp.pulses[pid]
                    staged.append(
                        cluster.local_forces[rp.rank][
                            p.atom_offset : p.atom_offset + p.recv_size
                        ].copy()
                    )
                    self.n_copies += 1
                    self.bytes_copied += staged[-1].nbytes
                    METRICS.counter("comm.pulses", backend="threadmpi", dir="f").inc()
                    METRICS.counter("comm.bytes", backend="threadmpi", dir="f").inc(
                        staged[-1].nbytes
                    )
                for rp in plan.ranks:
                    p = rp.pulses[pid]
                    tp = plan.ranks[p.recv_rank].pulses[pid]
                    np.add.at(cluster.local_forces[p.recv_rank], tp.index_map, staged[rp.rank])
