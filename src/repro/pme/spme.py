"""Smooth Particle-Mesh Ewald (Essmann et al., J. Chem. Phys. 103, 8577).

The reciprocal-space Ewald sum evaluated on a mesh:

1. **spread** — each charge is assigned to ``order**3`` grid nodes with
   cardinal B-spline weights;
2. **solve** — one forward FFT, multiplication with the Ewald influence
   function (4 pi / k^2) exp(-k^2 / 4 beta^2) and the Euler spline
   correction |b1 b2 b3|^2, one inverse FFT giving the mesh potential;
3. **gather** — energies from Q . phi, forces from the analytic B-spline
   derivatives (no finite differencing).

Verified against :func:`repro.pme.ewald_direct.ewald_direct` in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erfcinv

from repro.md.forcefield import COULOMB_FACTOR


def optimal_beta(r_cut: float, tolerance: float = 1e-5) -> float:
    """Screening parameter with erfc(beta rc) = tolerance at the cutoff
    (GROMACS' ewald-rtol convention)."""
    if r_cut <= 0 or not 0 < tolerance < 1:
        raise ValueError("need r_cut > 0 and tolerance in (0, 1)")
    return float(erfcinv(tolerance)) / r_cut


def _bspline_value(x: np.ndarray, order: int) -> np.ndarray:
    """Cardinal B-spline M_order(x), elementwise.

    Cox-de Boor recursion (Essmann eq. 4.1): M_2 is the unit hat on (0, 2),
    M_p(x) = x/(p-1) M_{p-1}(x) + (p-x)/(p-1) M_{p-1}(x-1).  Exponential in
    ``order``, which never exceeds ~6 in practice.
    """
    if order == 2:
        return np.maximum(0.0, 1.0 - np.abs(np.asarray(x) - 1.0))
    return (x / (order - 1)) * _bspline_value(x, order - 1) + (
        (order - x) / (order - 1)
    ) * _bspline_value(x - 1.0, order - 1)


def _bspline_weights(frac: np.ndarray, order: int) -> tuple[np.ndarray, np.ndarray]:
    """Spline weights and derivatives for the ``order`` nodes of each atom.

    ``frac`` in [0, 1) is the offset above the base node ``floor(u)``.
    Column j corresponds to node ``floor(u) - (order-1) + j`` (ascending),
    whose spline argument is ``frac + order - 1 - j``.  Derivatives follow
    dM_p/dx = M_{p-1}(x) - M_{p-1}(x-1).
    """
    args = frac[:, None] + (order - 1 - np.arange(order))[None, :]
    m = _bspline_value(args, order)
    dm = _bspline_value(args, order - 1) - _bspline_value(args - 1.0, order - 1)
    return m, dm


def _euler_spline_moduli(k_grid: int, order: int) -> np.ndarray:
    """|b(m)|^2 for one dimension (Essmann eq. 4.4)."""
    k = np.arange(k_grid)
    # Spline values at integer arguments 1..order-1.
    vals = _bspline_value(np.arange(1, order, dtype=np.float64), order)
    denom = np.zeros(k_grid, dtype=np.complex128)
    for j, v in enumerate(vals):
        denom += v * np.exp(2j * np.pi * k * j / k_grid)
    mod2 = np.abs(denom) ** 2
    # Zeros of the denominator (odd-order artefacts / Nyquist): the
    # influence function is masked there.
    safe = mod2 > 1e-10
    out = np.zeros(k_grid)
    out[safe] = 1.0 / mod2[safe]
    return out


@dataclass
class SpmeSolver:
    """Reciprocal-space PME solver for an orthorhombic box."""

    box: np.ndarray
    grid: tuple[int, int, int]
    beta: float
    order: int = 4
    #: Mesh interpolation breaks exact translation invariance, leaving a
    #: small spurious net force; like GROMACS, subtract it by default.
    remove_net_force: bool = True

    def __post_init__(self) -> None:
        self.box = np.asarray(self.box, dtype=np.float64)
        if self.beta <= 0:
            raise ValueError("beta must be positive")
        if self.order < 3:
            raise ValueError("spline order must be >= 3")
        if any(k < 2 * self.order for k in self.grid):
            raise ValueError(
                f"grid {self.grid} too coarse for spline order {self.order}"
            )
        self._influence = self._build_influence()

    # -- influence function ----------------------------------------------------

    def _build_influence(self) -> np.ndarray:
        """G(m) = (4 pi / k^2) exp(-k^2/4 beta^2) * prod |b_a|^-2, G(0)=0."""
        kx, ky, kz = self.grid
        b2 = [
            _euler_spline_moduli(k, self.order) for k in self.grid
        ]
        # Wrapped integer frequencies -> physical k vectors.
        def freq(kdim, length):
            m = np.fft.fftfreq(kdim, d=1.0 / kdim)  # 0..K/2, -K/2..-1
            return 2.0 * np.pi * m / length

        gx = freq(kx, self.box[0])[:, None, None]
        gy = freq(ky, self.box[1])[None, :, None]
        gz = freq(kz, self.box[2])[None, None, :]
        k2 = gx**2 + gy**2 + gz**2
        with np.errstate(divide="ignore", invalid="ignore"):
            g = 4.0 * np.pi / k2 * np.exp(-k2 / (4.0 * self.beta**2))
        g[0, 0, 0] = 0.0
        g = g * b2[0][:, None, None] * b2[1][None, :, None] * b2[2][None, None, :]
        return g

    # -- spreading ------------------------------------------------------------------

    def _spline_setup(self, positions: np.ndarray):
        """Per-atom node indices, weights, and weight derivatives (per dim)."""
        idx, w, dw = [], [], []
        for d in range(3):
            k = self.grid[d]
            u = positions[:, d] / self.box[d] * k
            base = np.floor(u).astype(int)
            frac = u - base
            m, dm = _bspline_weights(frac, self.order)
            nodes = (base[:, None] - (self.order - 1) + np.arange(self.order)[None, :]) % k
            idx.append(nodes)
            w.append(m)
            dw.append(dm * (k / self.box[d]))
        return idx, w, dw

    def spread(self, positions: np.ndarray, charges: np.ndarray) -> np.ndarray:
        """Assign charges to the mesh (the paper's pack-analogue for PME)."""
        positions = np.asarray(positions, dtype=np.float64)
        charges = np.asarray(charges, dtype=np.float64)
        idx, w, _ = self._spline_setup(positions)
        q_grid = np.zeros(self.grid)
        ky, kz = self.grid[1], self.grid[2]
        for a in range(self.order):
            for b in range(self.order):
                for c in range(self.order):
                    flat = (idx[0][:, a] * ky + idx[1][:, b]) * kz + idx[2][:, c]
                    np.add.at(
                        q_grid.reshape(-1),
                        flat,
                        charges * w[0][:, a] * w[1][:, b] * w[2][:, c],
                    )
        return q_grid

    # -- solve + gather ------------------------------------------------------------------

    def reciprocal(
        self, positions: np.ndarray, charges: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Reciprocal-space energy (kJ/mol) and forces."""
        positions = np.asarray(positions, dtype=np.float64)
        charges = np.asarray(charges, dtype=np.float64)
        q_grid = self.spread(positions, charges)
        return self.reciprocal_from_mesh(q_grid, positions, charges)

    def reciprocal_from_mesh(
        self, q_grid: np.ndarray, positions: np.ndarray, charges: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Solve from an externally assembled charge mesh (distributed
        spreading) and gather forces for the given atoms."""
        positions = np.asarray(positions, dtype=np.float64)
        charges = np.asarray(charges, dtype=np.float64)
        if q_grid.shape != tuple(self.grid):
            raise ValueError(f"mesh shape {q_grid.shape} != grid {self.grid}")
        volume = float(np.prod(self.box))
        q_hat = np.fft.fftn(q_grid)
        pref = COULOMB_FACTOR / (2.0 * volume)
        energy = pref * float(np.sum(self._influence * np.abs(q_hat) ** 2))
        # Mesh potential: phi = K^3 * ifft(G * Q^) * f/V  (see module docs).
        phi = np.real(np.fft.ifftn(self._influence * q_hat)) * (
            COULOMB_FACTOR / volume * q_grid.size
        )
        # Gather forces with analytic spline derivatives.
        idx, w, dw = self._spline_setup(positions)
        n = positions.shape[0]
        forces = np.zeros((n, 3))
        ky, kz = self.grid[1], self.grid[2]
        phi_flat = phi.reshape(-1)
        for a in range(self.order):
            for b in range(self.order):
                for c in range(self.order):
                    flat = (idx[0][:, a] * ky + idx[1][:, b]) * kz + idx[2][:, c]
                    p = phi_flat[flat]
                    forces[:, 0] -= charges * dw[0][:, a] * w[1][:, b] * w[2][:, c] * p
                    forces[:, 1] -= charges * w[0][:, a] * dw[1][:, b] * w[2][:, c] * p
                    forces[:, 2] -= charges * w[0][:, a] * w[1][:, b] * dw[2][:, c] * p
        if self.remove_net_force and n:
            forces -= forces.mean(axis=0, keepdims=True)
        return energy, forces

    def self_energy(self, charges: np.ndarray) -> float:
        """Gaussian self-interaction correction."""
        return float(
            -COULOMB_FACTOR * self.beta / np.sqrt(np.pi) * np.sum(np.asarray(charges) ** 2)
        )
