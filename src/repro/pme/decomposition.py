"""MPMD rank specialization: PP ranks <-> dedicated PME ranks.

Reproduces the communication structure of GROMACS' PME rank specialization
(paper Sec. 2.2): each particle-particle (PP) rank ships its coordinates and
charges to an assigned PME rank before the long-range solve and receives
reciprocal-space forces back afterwards — the exact communication the paper
names as the next target for the GPU-initiated redesign (Sec. 7).

The transfers run through :class:`~repro.nvshmem.teams.NvshmemTeam` symmetric
buffers, i.e. through the team-based allocation extension of Sec. 5.3 — the
PP team's buffers cost PME ranks nothing and vice versa, which is precisely
what COMM_WORLD-wide NVSHMEM cannot do today.

Substitution note (DESIGN.md): production GROMACS distributes the 3D FFT
across PME ranks with cuFFTMp; the FFT internals are not this paper's
contribution, so each PME rank spreads its share of atoms onto a full-size
mesh and the meshes are reduced before one global solve — mathematically
identical output, same PP<->PME communication pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nvshmem.runtime import NodeTopology, NvshmemRuntime
from repro.nvshmem.teams import NvshmemTeam, split_pp_pme
from repro.pme.spme import SpmeSolver


@dataclass
class PmePpSession:
    """A PP/PME-specialized job over the in-process NVSHMEM runtime."""

    n_pp: int
    n_pme: int
    box: np.ndarray
    grid: tuple[int, int, int]
    beta: float
    order: int = 4
    pes_per_node: int | None = None
    max_atoms_per_rank: int = 100_000

    def __post_init__(self) -> None:
        n = self.n_pp + self.n_pme
        topo = NodeTopology(n_pes=n, pes_per_node=self.pes_per_node or n)
        self.runtime = NvshmemRuntime(topo)
        self.pp_team, self.pme_team = split_pp_pme(self.runtime, self.n_pme)
        self.solver = SpmeSolver(
            box=np.asarray(self.box, dtype=np.float64),
            grid=self.grid,
            beta=self.beta,
            order=self.order,
        )
        # Team-symmetric staging: coordinates+charges inbound to PME ranks,
        # forces outbound back to PP ranks.  (The Sec. 5.3 win: these exist
        # only on the team that needs them.)
        cap = self.max_atoms_per_rank
        self._xq_in = self.pme_team.symmetric_alloc("ppXQ", (self.n_pp, cap, 4), np.float64)
        self._count_in = self.pme_team.symmetric_alloc("ppCount", (self.n_pp,), np.int64)
        self._f_back = self.pp_team.symmetric_alloc("pmeForces", (cap, 3), np.float64)

    # -- rank mapping -----------------------------------------------------------

    def pme_rank_of(self, pp_rank: int) -> int:
        """PME team rank serving a PP rank (contiguous block mapping)."""
        if not 0 <= pp_rank < self.n_pp:
            raise ValueError(f"pp_rank {pp_rank} out of range")
        return pp_rank * self.n_pme // self.n_pp

    def pp_ranks_of(self, pme_rank: int) -> list[int]:
        return [r for r in range(self.n_pp) if self.pme_rank_of(r) == pme_rank]

    # -- one long-range evaluation ---------------------------------------------------

    def compute(
        self,
        positions_per_pp: list[np.ndarray],
        charges_per_pp: list[np.ndarray],
    ) -> tuple[float, list[np.ndarray]]:
        """Run one PP -> PME -> PP round trip.

        Returns the reciprocal+self energy and the per-PP-rank force arrays.
        """
        if len(positions_per_pp) != self.n_pp or len(charges_per_pp) != self.n_pp:
            raise ValueError(f"need arrays for all {self.n_pp} PP ranks")

        # 1. PP ranks put coordinates+charges into their PME rank's buffer.
        for pp in range(self.n_pp):
            pos = np.asarray(positions_per_pp[pp], dtype=np.float64)
            q = np.asarray(charges_per_pp[pp], dtype=np.float64)
            n = pos.shape[0]
            if n > self.max_atoms_per_rank:
                raise ValueError(
                    f"PP rank {pp} holds {n} atoms > capacity "
                    f"{self.max_atoms_per_rank}"
                )
            target = self.pme_rank_of(pp)
            payload = np.concatenate([pos, q[:, None]], axis=1)
            # Row-sliced put into the (pp, :, :) plane of the PME buffer.
            self._xq_in.on(target)[pp, :n] = payload
            self._count_in.on(target)[pp] = n
            self.runtime.stats.puts += 1
            self.runtime.stats.bytes_put += payload.nbytes

        # 2. Each PME rank spreads its share; meshes reduce to the global Q.
        meshes = []
        for pme in range(self.n_pme):
            xs, qs = [], []
            for pp in self.pp_ranks_of(pme):
                n = int(self._count_in.on(pme)[pp])
                block = self._xq_in.on(pme)[pp, :n]
                xs.append(block[:, :3])
                qs.append(block[:, 3])
            if xs:
                meshes.append(
                    self.solver.spread(np.vstack(xs), np.concatenate(qs))
                )
        q_mesh = np.sum(meshes, axis=0) if meshes else np.zeros(self.grid)

        # 3. Global solve (distributed-FFT substitution, see module docs),
        # then per-rank force gather from the shared mesh potential.
        all_pos = np.vstack([np.asarray(p, dtype=np.float64) for p in positions_per_pp])
        all_q = np.concatenate([np.asarray(c, dtype=np.float64) for c in charges_per_pp])
        energy, forces = self.solver.reciprocal_from_mesh(q_mesh, all_pos, all_q)
        energy += self.solver.self_energy(all_q)

        # 4. PME ranks return forces to the owning PP ranks.
        out: list[np.ndarray] = []
        offset = 0
        for pp in range(self.n_pp):
            n = np.asarray(positions_per_pp[pp]).shape[0]
            block = forces[offset : offset + n]
            self._f_back.on(pp)[:n] = block
            self.runtime.stats.puts += 1
            self.runtime.stats.bytes_put += block.nbytes
            out.append(self._f_back.on(pp)[:n].copy())
            offset += n
        return energy, out
