"""Direct Ewald summation — the ground truth for the SPME solver.

Splits the conditionally convergent Coulomb lattice sum with a Gaussian
screening parameter beta (nm^-1):

* real space:    E_r = f/2 sum_{i!=j} q_i q_j erfc(beta r_ij) / r_ij
  (minimum image; converged when erfc(beta*rc) is negligible),
* reciprocal:    E_k = (f / 2V) sum_{k!=0} (4 pi / k^2) e^{-k^2/(4 beta^2)} |S(k)|^2
  with the structure factor S(k) = sum_i q_i e^{i k . r_i},
* self term:     E_s = -f beta/sqrt(pi) sum_i q_i^2.

O(N^2 + N K^3): only usable for small systems, which is exactly its job —
pinning SPME's energies and forces in the tests.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.md.forcefield import COULOMB_FACTOR


def ewald_real_space(
    positions: np.ndarray,
    charges: np.ndarray,
    box: np.ndarray,
    beta: float,
    r_cut: float,
) -> tuple[float, np.ndarray]:
    """Screened real-space Ewald term: energy and forces within ``r_cut``.

    This is the short-range piece a PP rank computes alongside LJ when PME
    handles the long range: V = f q_i q_j erfc(beta r) / r.
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    n = positions.shape[0]
    forces = np.zeros((n, 3))
    energy = 0.0
    for i in range(n - 1):
        dx = positions[i] - positions[i + 1 :]
        dx -= np.rint(dx / box) * box
        r2 = np.einsum("ij,ij->i", dx, dx)
        mask = r2 <= r_cut * r_cut
        if not np.any(mask):
            continue
        r = np.sqrt(r2[mask])
        qq = COULOMB_FACTOR * charges[i] * charges[i + 1 :][mask]
        energy += float(np.sum(qq * erfc(beta * r) / r))
        # d/dr [erfc(br)/r] = -(erfc(br)/r^2 + 2b/sqrt(pi) e^{-b^2 r^2}/r)
        fr = qq * (
            erfc(beta * r) / r2[mask]
            + 2.0 * beta / np.sqrt(np.pi) * np.exp(-((beta * r) ** 2)) / r
        )
        fvec = (fr / r)[:, None] * dx[mask]
        forces[i] += fvec.sum(axis=0)
        np.subtract.at(forces, np.nonzero(mask)[0] + i + 1, fvec)
    return energy, forces


def ewald_direct(
    positions: np.ndarray,
    charges: np.ndarray,
    box: np.ndarray,
    beta: float,
    r_cut: float | None = None,
    k_max: int = 8,
) -> tuple[float, np.ndarray]:
    """Total electrostatic energy (kJ/mol) and forces for a neutral system.

    Parameters
    ----------
    beta:
        Ewald screening parameter, nm^-1.
    r_cut:
        Real-space cutoff; defaults to just under half the smallest box
        edge (maximal minimum-image range).
    k_max:
        Reciprocal sum includes all integer triples with |n_i| <= k_max.
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    n = positions.shape[0]
    if abs(float(charges.sum())) > 1e-8 * max(1, n):
        raise ValueError("Ewald summation requires a neutral system")
    if beta <= 0:
        raise ValueError("beta must be positive")
    if r_cut is None:
        r_cut = 0.5 * float(box.min()) * (1 - 1e-9)
    volume = float(np.prod(box))

    # -- real space (pairwise, minimum image) ----------------------------------
    e_real, forces = ewald_real_space(positions, charges, box, beta, r_cut)

    # -- reciprocal space ------------------------------------------------------------
    e_recip = 0.0
    rng = range(-k_max, k_max + 1)
    two_pi = 2.0 * np.pi
    for nx in rng:
        for ny in rng:
            for nz in rng:
                if nx == 0 and ny == 0 and nz == 0:
                    continue
                k = two_pi * np.array([nx / box[0], ny / box[1], nz / box[2]])
                k2 = float(k @ k)
                a_k = (4.0 * np.pi / k2) * np.exp(-k2 / (4.0 * beta**2))
                phase = positions @ k
                s_re = float(np.sum(charges * np.cos(phase)))
                s_im = float(np.sum(charges * np.sin(phase)))
                e_recip += a_k * (s_re**2 + s_im**2)
                # F_i = (f/V) q_i A_k [sin(k.r_i) S_re - cos(k.r_i) S_im] k
                coef = (COULOMB_FACTOR / volume) * charges * a_k * (
                    np.sin(phase) * s_re - np.cos(phase) * s_im
                )
                forces += coef[:, None] * k[None, :]
    e_recip *= COULOMB_FACTOR / (2.0 * volume)

    # -- self term ----------------------------------------------------------------------
    e_self = -COULOMB_FACTOR * beta / np.sqrt(np.pi) * float(np.sum(charges**2))

    return e_real + e_recip + e_self, forces
