"""Particle-Mesh Ewald substrate.

GROMACS' rank specialization exists because of PME: a subset of ranks runs
the 3D-FFT-based long-range solver while PP ranks do particle-particle work
(paper Sec. 2.2), and the PP <-> PME coordinate/force communication is the
paper's declared future-work target for the GPU-initiated redesign (Sec. 7).
The grappa benchmarks deliberately use reaction-field electrostatics to
keep PME off the critical path — but a credible GROMACS reproduction needs
the substrate, so here it is:

* :mod:`repro.pme.ewald_direct` — brute-force Ewald summation (real-space
  erfc + explicit reciprocal sum + self term): the ground truth;
* :mod:`repro.pme.spme` — smooth PME (Essmann et al. 1995): cardinal
  B-spline charge spreading, FFT convolution with the Ewald influence
  function, analytic spline-derivative forces — verified against the direct
  sum in the test suite;
* :mod:`repro.pme.decomposition` — MPMD rank specialization: PP ranks ship
  coordinates/charges to PME ranks (which use team-based symmetric buffers,
  the Sec. 5.3 extension) and receive long-range forces back.
"""

from repro.pme.decomposition import PmePpSession
from repro.pme.ewald_direct import ewald_direct
from repro.pme.spme import SpmeSolver, optimal_beta

__all__ = [
    "PmePpSession",
    "SpmeSolver",
    "ewald_direct",
    "optimal_beta",
]
