"""The fused GPU-initiated NVSHMEM schedule (paper Fig. 2, Algorithms 2-6).

Key structural differences from the MPI schedule:

* the CPU only launches — no CPU-GPU synchronization, so in the
  GPU-resident steady state launches overlap with earlier steps' compute
  and GPU tasks do not wait for them;
* the coordinate halo is ONE fused kernel: each pulse's threadblock group
  packs its independent entries immediately, acquire-waits on the exact
  earlier pulses feeding its dependent entries, then transfers (NVLink: TMA
  stores pipelined with packing; InfiniBand: one coarsened put-with-signal)
  — pulses progress concurrently (separate ``gpu.nl.p*`` block groups);
* the force halo is the reverse fused kernel: a zone is served once all
  later pulses' returned forces have accumulated into it (DEP_MGMT, waiting
  on every subsequent pulse as in Algorithm 5), then the owner gets it over
  NVLink (or receives a put over IB) and scatter-accumulates;
* peer events are mirrored by symmetry: "pulse k arrived" equals our own
  pulse-k send completion plus wire/signal latency.

Ablation knobs map to the paper's design choices: ``fused=False``
serializes the pulses (the baseline of Sec. 5.1), ``dep_partitioning=False``
disables the depOffset split, ``tma=False`` replaces pipelined TMA stores
with a staged copy after packing completes.
"""

from __future__ import annotations

from repro.gpusim.graph import TaskGraph
from repro.perf.workload import StepWorkload
from repro.sched.durations import BYTES_PER_ENTRY, Durations
from repro.sched.pme_comm import PmeWork, add_pme_arm
from repro.sched.prune import add_step_tail


def add_nvshmem_step(
    g: TaskGraph,
    wl: StepWorkload,
    d: Durations,
    prefix: str = "",
    prev: dict[str, str] | None = None,
    prune_opt: bool = True,
    fused: bool = True,
    dep_partitioning: bool = True,
    tma: bool = True,
    cuda_graph: bool = False,
    local_nb_extra: float = 0.0,
    peer_lag_extra: float = 0.0,
    resync_us: float = 0.0,
    pme: PmeWork | None = None,
) -> dict[str, str]:
    """Append one fused-NVSHMEM step; returns its boundary task names.

    ``peer_lag_extra`` models load imbalance: every mirrored peer event
    (halo arrivals, force availability) lands that much later than our own
    progress would suggest, because the slowest peer is behind us.
    ``resync_us`` inserts the paper's CPU-based resynchronization at step
    start (all PEs align once; the step is no longer fully GPU-resident).
    """
    hw = d.hw
    launch_cost = hw.launch_us + 1.5 * hw.event_us
    prev_integrate = (prev["integrate"],) if prev else ()
    prev_clear = (prev["clear"],) if prev else ()
    if resync_us > 0.0:
        resync = g.add(
            f"{prefix}resync",
            "cpu",
            resync_us,
            deps=prev_integrate,
            kind="sync",
        ).name
        prev_integrate = prev_integrate + (resync,)

    # GPU-resident steady state: these launches were issued during earlier
    # steps' GPU work; kernels do not depend on them.  The CPU row exists
    # for the timeline and the CPU-utilization sanity checks.  With CUDA
    # graph capture (Sec. 5.3: steps including NVSHMEM communication can be
    # captured) the whole step replays from ONE graph launch.
    if cuda_graph:
        g.add(f"{prefix}launch_graph", "cpu", launch_cost, kind="launch")
    else:
        for name in ("local_nb", "fused_x", "bonded", "nl_nb", "fused_f"):
            g.add(f"{prefix}launch_{name}", "cpu", launch_cost, kind="launch")

    local_nb = g.add(
        f"{prefix}local_nb",
        "gpu.local",
        d.local_nb() + local_nb_extra,
        deps=prev_integrate + prev_clear,
        kind="kernel",
    ).name

    # -- fused coordinate halo (FusedPackCommX) -----------------------------------
    pulses = sorted(wl.pulses, key=lambda p: p.pulse_id)
    arrival: dict[int, tuple[str, float]] = {}  # pulse -> (task, lag)
    pack_tasks: list[str] = []
    for p in pulses:
        pid = p.pulse_id
        res = f"gpu.nl.p{pid}" if fused else "gpu.nonlocal"
        if dep_partitioning:
            n_ind, n_dep = p.independent_atoms, p.dependent_atoms
        else:
            n_ind, n_dep = 0.0, p.send_atoms
        dep_pulses = [q.pulse_id for q in pulses if q.pulse_id < pid]

        ind_name = None
        if n_ind > 0:
            # Fused: independent entries pack immediately.  Serialized
            # baseline: even the independent pack waits for the previous
            # pulse's arrival (pulses processed strictly in order).
            ind_deps = list(prev_integrate)
            ind_lags: dict[str, float] = {}
            if not fused:
                for k in dep_pulses:
                    t, lag = arrival[k]
                    ind_deps.append(t)
                    ind_lags[t] = lag
            ind_name = g.add(
                f"{prefix}nonlocal:xpack_ind{pid}",
                res,
                d.pack_chunk(n_ind),
                deps=tuple(ind_deps),
                lags=ind_lags,
                kind="pack",
            ).name
        dep_deps = list(prev_integrate)
        lags: dict[str, float] = {}
        for k in dep_pulses:
            t, lag = arrival[k]
            dep_deps.append(t)
            lags[t] = lag
        if ind_name:
            dep_deps.append(ind_name)
        dep_name = g.add(
            f"{prefix}nonlocal:xpack_dep{pid}",
            res,
            d.pack_chunk(n_dep) if n_dep > 0 else 0.05,
            deps=tuple(dep_deps),
            lags=lags,
            kind="pack",
        ).name
        pack_tasks.append(dep_name)

        if p.nvlink and tma:
            # TMA stores pipelined with packing: only the issue latency and
            # the dependent tail stay exposed after the last pack.
            dur = d.tma_tail(p)
        else:
            # Staged: the full payload moves after packing completes
            # (always the case for the coarsened InfiniBand put).
            dur = d.wire(p)
        xfer = g.add(
            f"{prefix}nonlocal:xfer{pid}",
            f"wire.x{pid}",
            dur,
            deps=(dep_name,),
            kind="comm",
        ).name
        arrival[pid] = (xfer, hw.signal_us + peer_lag_extra)

    # Bonded work shares the non-local stream; it runs once the fused pack
    # kernel has retired (all block groups done).
    bonded = g.add(
        f"{prefix}nonlocal:bonded",
        "gpu.nonlocal",
        d.bonded(),
        deps=tuple(pack_tasks) or prev_integrate,
        kind="kernel",
    ).name
    # Non-local NB needs every pulse's halo to have arrived (mirrored).
    nl_deps = [bonded]
    nl_lags = {}
    for pid, (t, lag) in arrival.items():
        nl_deps.append(t)
        nl_lags[t] = lag
    # SM resource sharing: the fused force kernel's block groups are already
    # resident and spin on signals while the non-local kernel runs, stealing
    # a share of its SMs (the paper's NVSHMEM kernel-slowdown observation).
    nl_nb = g.add(
        f"{prefix}nonlocal:nb",
        "gpu.nonlocal",
        d.nonlocal_nb() * (1.0 + hw.sm_share_frac),
        deps=tuple(nl_deps),
        lags=nl_lags,
        kind="kernel",
    ).name

    # -- fused force halo (FusedCommUnpackF), last pulse first -----------------------
    acc_tasks: dict[int, str] = {}
    for p in sorted(pulses, key=lambda q: -q.pulse_id):
        pid = p.pulse_id
        res = f"gpu.nl.p{pid}" if fused else "gpu.nonlocal"
        # DEP_MGMT (conservative, Algorithm 5 line 9): the peer serves its
        # zone once all later pulses' forces accumulated there.  By symmetry
        # its readiness equals ours: nl_nb done + our later accumulations.
        ready_deps = [nl_nb]
        lags = {nl_nb: hw.signal_us + peer_lag_extra}
        for q in pulses:
            if q.pulse_id > pid:
                t = acc_tasks[q.pulse_id]
                ready_deps.append(t)
                lags[t] = hw.signal_us + peer_lag_extra
        nbytes = p.send_atoms * BYTES_PER_ENTRY
        if p.nvlink:
            # Receiver-driven TMA get from the peer's force buffer.
            dur = hw.tma_issue_us + nbytes / hw.nvlink_bw
        else:
            dur = hw.ib_alpha_us + hw.ib_proxy_us + nbytes / hw.ib_bw
        fxfer = g.add(
            f"{prefix}nonlocal:fxfer{pid}",
            f"wire.f{pid}",
            dur,
            deps=tuple(ready_deps),
            lags=lags,
            kind="comm",
        ).name
        acc = g.add(
            f"{prefix}nonlocal:facc{pid}",
            res,
            d.pack_chunk(p.send_atoms),
            deps=(fxfer,),
            kind="pack",
        ).name
        acc_tasks[pid] = acc

    force_done = [acc_tasks[p.pulse_id] for p in pulses] if pulses else [nl_nb]
    if pme is not None:
        force_done.append(
            add_pme_arm(g, hw, pme, prefix, prev_integrate, gpu_initiated=True)
        )
    return add_step_tail(
        g,
        d,
        force_done=force_done,
        local_done=local_nb,
        prefix=prefix,
        prune_opt=prune_opt,
        launch_gated=False,
        graph_captured=cuda_graph,
    )


def build_nvshmem_schedule(
    wl: StepWorkload,
    d: Durations,
    prune_opt: bool = True,
    fused: bool = True,
    dep_partitioning: bool = True,
    tma: bool = True,
    cuda_graph: bool = False,
    local_nb_extra: float = 0.0,
    peer_lag_extra: float = 0.0,
    resync_us: float = 0.0,
    pme: PmeWork | None = None,
    n_steps: int = 1,
) -> tuple[TaskGraph, list[dict[str, str]]]:
    """Chain ``n_steps`` NVSHMEM steps; returns graph and step boundaries."""
    g = TaskGraph()
    prev = None
    bounds = []
    for i in range(n_steps):
        prev = add_nvshmem_step(
            g, wl, d, prefix=f"s{i}:", prev=prev, prune_opt=prune_opt,
            fused=fused, dep_partitioning=dep_partitioning, tma=tma,
            cuda_graph=cuda_graph, local_nb_extra=local_nb_extra,
            peer_lag_extra=peer_lag_extra, resync_us=resync_us, pme=pme,
        )
        bounds.append(prev)
    return g, bounds


def comm_kernel_busy_time(g: TaskGraph, prefix: str = "") -> float:
    """SM time consumed by the fused communication kernels' block groups.

    Feeds the SM resource-sharing penalty: pack/accumulate work co-resident
    with the local kernel steals SM time from it (the paper's 10-16 us
    local-work slowdown in 2D/3D decompositions).
    """
    g.evaluate()
    busy = 0.0
    for t in g.tasks.values():
        if (
            t.name.startswith(prefix)
            and t.resource.startswith("gpu.nl.p")
            and t.kind == "pack"
        ):
            busy += t.duration
    return busy
