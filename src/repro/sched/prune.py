"""End-of-step schedule tail and the Sec. 5.4 prune optimization.

The original GROMACS heterogeneous schedule placed the rolling-prune kernel
on the update path, where in GPU-resident mode it could execute *before*
integration and block it, delaying the critical path of the following step.
The paper's revision (Sec. 5.4):

* prune moves to a dedicated **low-priority** stream and launches at the end
  of the step (its result only matters by the next pair-list rebuild);
* reduction + update get a **medium-priority** stream so they preempt
  pruning.

With the optimization the step's critical path ends at integration; without
it, prune sits on the update stream in front of integration and stretches
every step.  The paper measured up to 10% improvement — the ABL-PRUNE
benchmark reproduces it.
"""

from __future__ import annotations

from repro.gpusim.graph import TaskGraph
from repro.sched.durations import Durations


def add_step_tail(
    g: TaskGraph,
    d: Durations,
    force_done: list[str],
    local_done: str,
    prefix: str = "",
    prune_opt: bool = True,
    launch_gated: bool = False,
    graph_captured: bool = False,
    cpu: str = "cpu",
) -> dict[str, str]:
    """Append reduce -> integrate (+ prune, clear) and the step-end marker.

    ``force_done`` are the tasks after which all forces are final;
    ``launch_gated=True`` makes GPU tasks wait for their CPU launch calls
    (the MPI schedule — the NVSHMEM schedule launches steps ahead).
    Returns the boundary task names the next step chains from.
    """
    hw = d.hw

    def launch(name: str, extra_dep: tuple[str, ...] = ()) -> tuple[str, ...]:
        # CUDA-graph capture replays the tail kernels from the step's single
        # graph launch: no per-kernel launch API calls at all.
        if graph_captured:
            return ()
        t = g.add(
            f"{prefix}launch_{name}",
            cpu,
            hw.launch_us + 1.5 * hw.event_us,
            deps=extra_dep,
            kind="launch",
        )
        return (t.name,) if launch_gated else ()

    reduce_f = g.add(
        f"{prefix}reduce_f",
        "gpu.update",
        d.reduce(),
        deps=tuple(force_done) + (local_done,) + launch("reduce"),
        kind="kernel",
    ).name

    if not prune_opt:
        # Legacy schedule: prune shares the update stream ahead of the
        # integration it blocks.
        prune = g.add(
            f"{prefix}prune",
            "gpu.update",
            d.prune(),
            deps=(reduce_f,) + launch("prune"),
            kind="kernel",
        ).name
        integrate_deps = (prune,) + launch("integrate")
    else:
        integrate_deps = (reduce_f,) + launch("integrate")

    integrate = g.add(
        f"{prefix}integrate",
        "gpu.update",
        d.integrate(),
        deps=integrate_deps,
        kind="kernel",
    ).name
    # Constraints, kinetic-energy accumulation, and assorted per-step update
    # work: coordinates are only final after this (next step's halo and
    # local kernel chain from it) — the paper's "other tasks" 30-40 us.
    update_misc = g.add(
        f"{prefix}update_misc",
        "gpu.update",
        d.other_host(),
        deps=(integrate,) + launch("update_misc"),
        kind="kernel",
    ).name

    if prune_opt:
        # Dedicated low-priority stream: off the critical path entirely.
        g.add(
            f"{prefix}prune",
            "gpu.prune",
            d.prune(),
            deps=(reduce_f,) + launch("prune"),
            kind="kernel",
        )

    clear = g.add(
        f"{prefix}clear_bufs",
        "gpu.local",
        hw.kernel_min_us,
        deps=(integrate,) + launch("clear"),
        kind="kernel",
    ).name
    other = g.add(f"{prefix}other_work", cpu, 12.0, kind="host").name

    end_deps = [update_misc, clear, other, local_done, *force_done]
    if not prune_opt:
        end_deps.append(f"{prefix}prune")
    step_end = g.add(f"{prefix}step_end", cpu, 0.0, deps=tuple(end_deps), kind="host").name
    return {"integrate": update_misc, "clear": clear, "step_end": step_end}
