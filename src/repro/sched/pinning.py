"""NVSHMEM proxy-thread affinity model (paper Sec. 5.5).

The NVSHMEM InfiniBand proxy thread inherits the affinity of the thread
that calls ``nvshmem_init``.  If that lands on a core already running a
GROMACS OpenMP worker, every proxied message contends with compute for the
core — the paper observed up to 50x end-to-end slowdown in multi-node runs.

Three modes reproduce the paper's experiment matrix:

* ``rank-pinning`` — GROMACS pins ranks to core ranges; the proxy floats
  within the range and, with low OS noise, stays effectively contention-free
  (the paper's default and best performer);
* ``reserve-thread`` — the paper's fix (``GMX_NVSHMEM_RESERVE_THREAD=1``):
  GROMACS uses one fewer OpenMP thread and initializes NVSHMEM from the
  spare, guaranteeing a free core.  No measurable benefit over rank pinning
  on a quiet system — reproduced as a tiny fixed improvement of zero;
* ``busy-core`` — the failure mode: the proxy timeshares a busy core, so
  per-message proxy handling stretches by the scheduling quantum and
  bandwidth collapses.
"""

from __future__ import annotations

from repro.perf.constants import HardwareParams

#: Per-message proxy latency multiplier and bandwidth divisor when the proxy
#: thread timeshares a busy core (calibrated to the paper's "up to 50x"
#: application slowdown in communication-bound multi-node runs).
_BUSY_PROXY_LATENCY_X = 1200.0
_BUSY_BANDWIDTH_DIV = 8.0

PINNING_MODES = ("rank-pinning", "reserve-thread", "busy-core")


def apply_pinning(hw: HardwareParams, mode: str = "rank-pinning") -> HardwareParams:
    """Return hardware parameters adjusted for the proxy placement mode."""
    if mode not in PINNING_MODES:
        raise ValueError(f"unknown pinning mode '{mode}', choose from {PINNING_MODES}")
    if mode == "busy-core":
        return hw.with_overrides(
            ib_proxy_us=hw.ib_proxy_us * _BUSY_PROXY_LATENCY_X,
            ib_bw=hw.ib_bw / _BUSY_BANDWIDTH_DIV,
        )
    # rank-pinning and reserve-thread are equivalent on a quiet machine
    # (the paper saw no benefit from thread-level pinning over rank-level).
    return hw
