"""PP <-> PME communication in the step schedule (the paper's future work).

Sec. 7: "we plan [to] use the GPU-initiated communication approaches and
optimizations employed here to redesign the rest of the communication in
GROMACS, notably the communication of coordinates and forces to and from the
PME tasks, which will be key to fully unlock the scalability potential of
important GROMACS workloads."

This module adds that PME arm to the simulated step so the projected benefit
can be quantified: a PP rank ships its coordinates to its PME rank after
integration, the PME pipeline (spread -> FFT -> solve -> iFFT -> gather)
runs on the dedicated rank, and the long-range forces return before the
force reduction.  Under the MPI control path both transfers cost CPU
synchronization on the PP rank (today's GROMACS); under the GPU-initiated
path they are device-side sends with signals (the projected redesign).

The grappa benchmarks use reaction-field electrostatics precisely to avoid
this arm; the EXT-PME experiment is therefore a *projection*, not a paper
figure — marked as such in DESIGN.md/EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.graph import TaskGraph
from repro.perf.constants import HardwareParams
from repro.sched.durations import BYTES_PER_ENTRY


@dataclass(frozen=True)
class PmeWork:
    """Per-step PME work for one PP rank's share of the system."""

    n_home: float  # atoms sent to the PME rank
    grid_points: int  # total mesh points handled by the PME rank
    nvlink: bool  # PP<->PME link type

    # Throughputs (items/us): spreading/gathering and the FFT+solve mesh work.
    spread_rate: float = 9_000.0
    mesh_rate: float = 450_000.0

    @classmethod
    def for_system(cls, n_atoms: int, n_pp: int, n_pme: int, nvlink: bool) -> "PmeWork":
        """GROMACS-style sizing: mesh spacing ~0.12 nm at grappa density."""
        from repro.md.grappa import grappa_box_length

        box = grappa_box_length(n_atoms)
        k = int(2 ** np.ceil(np.log2(box / 0.12)))
        return cls(
            n_home=n_atoms / n_pp,
            grid_points=k**3 // max(1, n_pme),
            nvlink=nvlink,
        )

    def xfer_us(self, hw: HardwareParams) -> float:
        nbytes = self.n_home * BYTES_PER_ENTRY
        if self.nvlink:
            return hw.nvlink_alpha_us + nbytes / hw.nvlink_bw
        return hw.ib_alpha_us + hw.ib_proxy_us + nbytes / hw.ib_bw

    def pipeline_us(self) -> float:
        """Spread + 2 FFTs + solve + gather on the PME rank."""
        mesh = self.grid_points * max(1.0, np.log2(max(2, self.grid_points))) / self.mesh_rate
        return 2.0 * self.n_home / self.spread_rate + mesh


def add_pme_arm(
    g: TaskGraph,
    hw: HardwareParams,
    pme: PmeWork,
    prefix: str,
    prev_integrate: tuple[str, ...],
    gpu_initiated: bool,
) -> str:
    """Insert the PP->PME->PP round trip; returns the force-arrival task.

    The returned task must join the force-reduction dependencies: long-range
    forces are part of the total force.
    """
    if gpu_initiated:
        # Projected redesign: a device-side put straight after integration,
        # signal-gated on both ends — no CPU involvement.
        xsend = g.add(
            f"{prefix}pme:xsend",
            "wire.pme",
            pme.xfer_us(hw),
            deps=prev_integrate,
            kind="comm",
        ).name
        pipeline_dep = (xsend,)
        pipeline_lags = {xsend: hw.signal_us}
    else:
        # Today's path: the CPU waits for the update, posts an MPI send.
        w = g.add(
            f"{prefix}pme:wait_x", "cpu", hw.cpu_sync_us, deps=prev_integrate, kind="sync"
        ).name
        post = g.add(
            f"{prefix}pme:post_x", "cpu", hw.mpi_call_us, deps=(w,), kind="host"
        ).name
        xsend = g.add(
            f"{prefix}pme:xsend",
            "wire.pme",
            hw.mpi_nvlink_alpha_us + pme.n_home * BYTES_PER_ENTRY / hw.nvlink_bw
            if pme.nvlink
            else hw.mpi_ib_alpha_us + pme.n_home * BYTES_PER_ENTRY / hw.ib_bw,
            deps=(post,) + prev_integrate,
            kind="comm",
        ).name
        pipeline_dep = (xsend,)
        pipeline_lags = {}

    pipeline = g.add(
        f"{prefix}pme:pipeline",
        "gpu.pme",
        pme.pipeline_us(),
        deps=pipeline_dep,
        lags=pipeline_lags,
        kind="kernel",
    ).name

    if gpu_initiated:
        freturn = g.add(
            f"{prefix}pme:freturn",
            "wire.pme",
            pme.xfer_us(hw),
            deps=(pipeline,),
            lags={pipeline: hw.signal_us},
            kind="comm",
        ).name
        return freturn
    w2 = g.add(
        f"{prefix}pme:wait_f", "cpu", hw.cpu_sync_us, deps=(pipeline,), kind="sync"
    ).name
    post2 = g.add(
        f"{prefix}pme:post_f", "cpu", hw.mpi_call_us, deps=(w2,), kind="host"
    ).name
    freturn = g.add(
        f"{prefix}pme:freturn",
        "wire.pme",
        hw.mpi_nvlink_alpha_us + pme.n_home * BYTES_PER_ENTRY / hw.nvlink_bw
        if pme.nvlink
        else hw.mpi_ib_alpha_us + pme.n_home * BYTES_PER_ENTRY / hw.ib_bw,
        deps=(post2, pipeline),
        kind="comm",
    ).name
    # The CPU must observe the arrival before launching the reduction.
    g.add(f"{prefix}pme:wait_ret", "cpu", hw.cpu_sync_us, deps=(freturn,), kind="sync")
    return freturn
