"""The thread-MPI schedule: event-driven DMA copies, intra-node only.

GROMACS' built-in thread-MPI runs ranks as threads of one process, so halo
exchange becomes cudaMemcpyAsync between peer device buffers enqueued on
streams with GPU-event dependencies (Sec. 2.2).  Schedule-wise it sits
between the two main contenders:

* like NVSHMEM, there is **no CPU-GPU synchronization**: the CPU launches
  whole steps ahead and events order everything on the device, so launch
  latencies hide (this is why thread-MPI "can outperform GPU-aware MPI in
  scaling regimes where local computation is insufficient to fully overlap
  communication");
* like MPI, pulses remain **serialized** with separate per-pulse pack
  kernels and copy-engine DMA transfers — no fusion, no dependency
  partitioning, no fine-grained TMA pipelining, plus the copy-engine launch
  overhead per transfer that the paper's NVSHMEM design eliminates.

Single-node only (threads of one process cannot span nodes).
"""

from __future__ import annotations

from repro.gpusim.graph import TaskGraph
from repro.perf.workload import StepWorkload
from repro.sched.durations import Durations
from repro.sched.prune import add_step_tail


def add_threadmpi_step(
    g: TaskGraph,
    wl: StepWorkload,
    d: Durations,
    prefix: str = "",
    prev: dict[str, str] | None = None,
    prune_opt: bool = True,
    local_nb_extra: float = 0.0,
) -> dict[str, str]:
    """Append one thread-MPI step; returns its boundary task names."""
    hw = d.hw
    if not all(p.nvlink for p in wl.pulses):
        raise ValueError(
            "thread-MPI is single-process: every pulse must be intra-node"
        )
    launch_cost = hw.launch_us + 1.5 * hw.event_us
    prev_integrate = (prev["integrate"],) if prev else ()
    prev_clear = (prev["clear"],) if prev else ()

    # Event-driven steady state: launches issued ahead, not gating.
    for name in ("local_nb", "halo_x", "bonded", "nl_nb", "halo_f"):
        g.add(f"{prefix}launch_{name}", "cpu", launch_cost, kind="launch")

    local_nb = g.add(
        f"{prefix}local_nb",
        "gpu.local",
        d.local_nb() + local_nb_extra,
        deps=prev_integrate + prev_clear,
        kind="kernel",
    ).name

    # -- coordinate halo: serialized pack + peer DMA per pulse -----------------
    prev_arrival: str | None = None
    for p in wl.pulses:
        pid = p.pulse_id
        pack_deps = list(prev_integrate)
        lags = {}
        if prev_arrival is not None:
            # Event dependency on the previous pulse's copy completion.
            pack_deps.append(prev_arrival)
            lags[prev_arrival] = hw.event_us
        pack = g.add(
            f"{prefix}nonlocal:xpack{pid}",
            "gpu.nonlocal",
            d.pack(p.send_atoms),
            deps=tuple(pack_deps),
            lags=lags,
            kind="pack",
        ).name
        # Copy-engine DMA straight into the peer's coordinate buffer at
        # atomOffset: no unpack kernel, but a per-copy engine launch alpha.
        xfer = g.add(
            f"{prefix}nonlocal:xfer{pid}",
            f"wire.x{pid}",
            d.wire(p),
            deps=(pack,),
            kind="comm",
        ).name
        prev_arrival = xfer

    bonded = g.add(
        f"{prefix}nonlocal:bonded",
        "gpu.nonlocal",
        d.bonded(),
        deps=prev_integrate,
        kind="kernel",
    ).name
    nl_deps = [bonded]
    nl_lags = {}
    if prev_arrival is not None:
        nl_deps.append(prev_arrival)
        nl_lags[prev_arrival] = hw.event_us
    nl_nb = g.add(
        f"{prefix}nonlocal:nb",
        "gpu.nonlocal",
        d.nonlocal_nb(),
        deps=tuple(nl_deps),
        lags=nl_lags,
        kind="kernel",
    ).name

    # -- force halo: reverse order, DMA + scatter-accumulate unpack -------------
    chain = nl_nb
    for p in reversed(wl.pulses):
        pid = p.pulse_id
        fxfer = g.add(
            f"{prefix}nonlocal:fxfer{pid}",
            f"wire.f{pid}",
            d.wire(p),
            deps=(chain,),
            lags={chain: hw.event_us},
            kind="comm",
        ).name
        chain = g.add(
            f"{prefix}nonlocal:funpack{pid}",
            "gpu.nonlocal",
            d.pack(p.send_atoms),
            deps=(fxfer,),
            kind="pack",
        ).name

    return add_step_tail(
        g,
        d,
        force_done=[chain],
        local_done=local_nb,
        prefix=prefix,
        prune_opt=prune_opt,
        launch_gated=False,
    )


def build_threadmpi_schedule(
    wl: StepWorkload,
    d: Durations,
    prune_opt: bool = True,
    local_nb_extra: float = 0.0,
    n_steps: int = 1,
) -> tuple[TaskGraph, list[dict[str, str]]]:
    """Chain ``n_steps`` thread-MPI steps."""
    g = TaskGraph()
    prev = None
    bounds = []
    for i in range(n_steps):
        prev = add_threadmpi_step(
            g, wl, d, prefix=f"s{i}:", prev=prev, prune_opt=prune_opt,
            local_nb_extra=local_nb_extra,
        )
        bounds.append(prev)
    return g, bounds
