"""The CPU-initiated GPU-aware MPI schedule (paper Fig. 1).

Structure per pulse, strictly serialized:

    CPU: launch pack -> wait(pack event) -> MPI_Sendrecv (blocks until the
    device-to-device transfer completes) -> launch unpack

Every wait is a CPU-GPU synchronization on the critical path; kernels cannot
be launched more than a pulse ahead because the CPU must observe GPU
completion before each MPI call — so launch latencies and sync costs are
exposed whenever kernels are short (the latency-bound regime of Fig. 6,
116 us non-local span at 11.25k atoms/GPU).

Steps chain: the coordinate pack of step *i* depends on the integration of
step *i-1*, and all CPU work is one sequential timeline — so in steady state
part of the exchange latency hides under the previous step's tail, which is
why MPI closes the gap on NVSHMEM as systems grow (Fig. 6's 116 -> 101 us).

Peer readiness is mirrored by symmetry: a transfer starts once *our* side
posts (homogeneous systems, identical peer timelines).
"""

from __future__ import annotations

from repro.gpusim.graph import TaskGraph
from repro.perf.workload import StepWorkload
from repro.sched.durations import Durations
from repro.sched.pme_comm import PmeWork, add_pme_arm
from repro.sched.prune import add_step_tail


def add_mpi_step(
    g: TaskGraph,
    wl: StepWorkload,
    d: Durations,
    prefix: str = "",
    prev: dict[str, str] | None = None,
    prune_opt: bool = True,
    local_nb_extra: float = 0.0,
    pme: PmeWork | None = None,
) -> dict[str, str]:
    """Append one MPI-schedule step; returns its boundary task names."""
    hw = d.hw
    launch_cost = hw.launch_us + 1.5 * hw.event_us
    prev_integrate = (prev["integrate"],) if prev else ()
    prev_clear = (prev["clear"],) if prev else ()

    def launch(name: str, deps: tuple[str, ...] = ()) -> str:
        return g.add(f"{prefix}launch_{name}", "cpu", launch_cost, deps=deps, kind="launch").name

    # Local non-bonded first (Fig. 1); its input coordinates come from the
    # previous step's integration, its force buffer from the clear.
    local_nb = g.add(
        f"{prefix}local_nb",
        "gpu.local",
        d.local_nb() + local_nb_extra,
        deps=(launch("local_nb"),) + prev_integrate + prev_clear,
        kind="kernel",
    ).name

    # -- coordinate halo: serialized pulses ------------------------------------
    # GROMACS' GPU-aware MPI receive lands in place (the halo region of the
    # coordinate buffer is contiguous at atomOffset), so there is a pack
    # kernel but no unpack kernel per pulse.
    prev_arrival: str | None = None
    for p in wl.pulses:
        pid = p.pulse_id
        pack_deps = [launch(f"xpack{pid}")] + list(prev_integrate)
        if prev_arrival is not None:
            # Forwarding: this pulse packs data delivered by the previous one.
            pack_deps.append(prev_arrival)
        pack = g.add(
            f"{prefix}nonlocal:xpack{pid}",
            "gpu.nonlocal",
            d.pack(p.send_atoms),
            deps=tuple(pack_deps),
            kind="pack",
        ).name
        # CPU blocks on the pack event before it may call MPI.
        w1 = g.add(f"{prefix}wait_xpack{pid}", "cpu", hw.cpu_sync_us, deps=(pack,), kind="sync").name
        post = g.add(f"{prefix}mpi_post_x{pid}", "cpu", hw.mpi_call_us, deps=(w1,), kind="host").name
        xfer = g.add(
            f"{prefix}nonlocal:xfer{pid}",
            f"wire.x{pid}",
            d.mpi_wire(p),
            deps=(post, pack),
            kind="comm",
        ).name
        # Blocking sendrecv: the CPU resumes only once data has arrived.
        g.add(f"{prefix}wait_xfer{pid}", "cpu", hw.cpu_sync_us, deps=(xfer,), kind="sync")
        prev_arrival = xfer

    # -- non-local force compute --------------------------------------------------
    bonded = g.add(
        f"{prefix}nonlocal:bonded",
        "gpu.nonlocal",
        d.bonded(),
        deps=(launch("bonded"),),
        kind="kernel",
    ).name
    nl_deps = [launch("nl_nb"), bonded]
    if prev_arrival is not None:
        nl_deps.append(prev_arrival)
    nl_nb = g.add(
        f"{prefix}nonlocal:nb",
        "gpu.nonlocal",
        d.nonlocal_nb(),
        deps=tuple(nl_deps),
        kind="kernel",
    ).name

    # -- force halo: reverse order, serialized ---------------------------------------
    # Zone forces are contiguous at atomOffset, so the send needs no pack
    # kernel; the receive needs a scatter-accumulate unpack.
    chain = nl_nb
    for p in reversed(wl.pulses):
        pid = p.pulse_id
        # The CPU waits until the zone's forces are final (non-local kernel
        # plus any accumulations from later pulses) before calling MPI.
        w0 = g.add(f"{prefix}wait_forces{pid}", "cpu", hw.cpu_sync_us, deps=(chain,), kind="sync").name
        post = g.add(f"{prefix}mpi_post_f{pid}", "cpu", hw.mpi_call_us, deps=(w0,), kind="host").name
        fxfer = g.add(
            f"{prefix}nonlocal:fxfer{pid}",
            f"wire.f{pid}",
            d.mpi_wire(p),
            deps=(post, chain),
            kind="comm",
        ).name
        w2 = g.add(f"{prefix}wait_fxfer{pid}", "cpu", hw.cpu_sync_us, deps=(fxfer,), kind="sync").name
        chain = g.add(
            f"{prefix}nonlocal:funpack{pid}",
            "gpu.nonlocal",
            d.pack(p.send_atoms),
            deps=(launch(f"funpack{pid}", (w2,)), fxfer),
            kind="pack",
        ).name

    force_done = [chain]
    if pme is not None:
        force_done.append(
            add_pme_arm(g, hw, pme, prefix, prev_integrate, gpu_initiated=False)
        )
    return add_step_tail(
        g,
        d,
        force_done=force_done,
        local_done=local_nb,
        prefix=prefix,
        prune_opt=prune_opt,
        launch_gated=True,
    )


def build_mpi_schedule(
    wl: StepWorkload,
    d: Durations,
    prune_opt: bool = True,
    local_nb_extra: float = 0.0,
    pme: PmeWork | None = None,
    n_steps: int = 1,
) -> tuple[TaskGraph, list[dict[str, str]]]:
    """Chain ``n_steps`` MPI steps; returns the graph and step boundaries."""
    g = TaskGraph()
    prev = None
    bounds = []
    for i in range(n_steps):
        prev = add_mpi_step(
            g, wl, d, prefix=f"s{i}:", prev=prev, prune_opt=prune_opt,
            local_nb_extra=local_nb_extra, pme=pme,
        )
        bounds.append(prev)
    return g, bounds
