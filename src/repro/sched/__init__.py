"""GPU-resident time-step schedules (the paper's Figs. 1-2 and Sec. 5.3-5.5).

Builders construct one representative rank's step as a
:class:`~repro.gpusim.TaskGraph`:

* :func:`build_mpi_schedule` — the CPU-initiated GPU-aware MPI schedule:
  serialized pulses, CPU-GPU synchronization before every MPI call (Fig. 1);
* :func:`build_nvshmem_schedule` — the fused GPU-initiated schedule: all
  kernels launched up front, pulses concurrent, per-pulse signals, NVLink
  TMA vs InfiniBand put-with-signal (Fig. 2, Algorithms 2-6);
* :mod:`repro.sched.prune` — the end-of-step schedule revision of Sec. 5.4
  (prune on a dedicated low-priority stream, medium-priority update stream);
* :mod:`repro.sched.pinning` — the NVSHMEM proxy-thread affinity model of
  Sec. 5.5 (a proxy pinned to a busy core degrades every IB message).
"""

from repro.sched.durations import Durations
from repro.sched.mpi_schedule import build_mpi_schedule
from repro.sched.nvshmem_schedule import build_nvshmem_schedule
from repro.sched.pinning import PINNING_MODES, apply_pinning
from repro.sched.prune import add_step_tail
from repro.sched.threadmpi_schedule import build_threadmpi_schedule

__all__ = [
    "Durations",
    "PINNING_MODES",
    "add_step_tail",
    "apply_pinning",
    "build_mpi_schedule",
    "build_nvshmem_schedule",
    "build_threadmpi_schedule",
]
