"""Kernel and transfer duration models shared by all schedule builders."""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.constants import HardwareParams
from repro.perf.workload import PulseWork, StepWorkload

#: Bytes per communicated entry (float3 coordinate or force).
BYTES_PER_ENTRY = 12.0


@dataclass(frozen=True)
class Durations:
    """Bind hardware parameters to a workload; all results in microseconds."""

    hw: HardwareParams
    wl: StepWorkload

    # -- compute kernels -------------------------------------------------------

    def local_nb(self) -> float:
        """Local non-bonded kernel (pairs among home atoms)."""
        return self.hw.kernel_base_us + self.wl.pairs_local / self.hw.pair_rate

    def nonlocal_nb(self) -> float:
        """Non-local non-bonded kernel: smaller, irregular work at low
        occupancy — its own base cost and a reduced pair throughput."""
        return self.hw.nonlocal_base_us + self.wl.pairs_nonlocal / self.hw.nonlocal_pair_rate

    def bonded(self) -> float:
        """Bonded/exclusion forces (scheduled on the non-local stream)."""
        return max(self.hw.kernel_min_us, self.hw.bonded_us_per_atom * self.wl.n_home)

    def pack(self, n_atoms: float) -> float:
        """Standalone pack/unpack kernel over ``n_atoms`` entries (carries
        the per-kernel launch-to-retire floor)."""
        return max(self.hw.kernel_min_us, n_atoms / self.hw.pack_rate)

    def pack_chunk(self, n_atoms: float) -> float:
        """Pack work done by a block group *inside* a fused kernel: no
        per-kernel floor, just a small block-scheduling constant."""
        return 0.2 + n_atoms / self.hw.pack_rate

    def integrate(self) -> float:
        return max(self.hw.kernel_min_us, self.wl.n_home / self.hw.integrate_rate)

    def reduce(self) -> float:
        """Force reduction across stream-local accumulation buffers."""
        return max(self.hw.kernel_min_us, self.wl.n_home / self.hw.reduce_rate)

    def prune(self) -> float:
        return max(self.hw.kernel_min_us, self.hw.prune_us_per_atom * self.wl.n_home)

    def other_host(self) -> float:
        """Per-step fixed bookkeeping (clearing, counters, constraints)."""
        return self.hw.other_fixed_us

    # -- transfers -----------------------------------------------------------------

    def wire(self, pulse: PulseWork, n_atoms: float | None = None) -> float:
        """Full transfer time of a pulse's payload on its link."""
        n = pulse.send_atoms if n_atoms is None else n_atoms
        nbytes = n * BYTES_PER_ENTRY
        if pulse.nvlink:
            return self.hw.nvlink_alpha_us + nbytes / self.hw.nvlink_bw
        return self.hw.ib_alpha_us + self.hw.ib_proxy_us + nbytes / self.hw.ib_bw

    def mpi_wire(self, pulse: PulseWork) -> float:
        """Transfer time of an MPI sendrecv (library overhead on top of the
        raw link: message matching, protocol, GPU-aware staging decisions)."""
        nbytes = pulse.send_atoms * BYTES_PER_ENTRY
        if pulse.nvlink:
            return self.hw.mpi_nvlink_alpha_us + nbytes / self.hw.nvlink_bw
        return self.hw.mpi_ib_alpha_us + nbytes / self.hw.ib_bw

    def tma_tail(self, pulse: PulseWork) -> float:
        """NVLink TMA store completion beyond the end of packing.

        Independent chunks stream to the peer while later chunks are still
        being packed, so only the issue latency plus the *dependent* part's
        bytes remain exposed after the last pack finishes.
        """
        nbytes = pulse.dependent_atoms * BYTES_PER_ENTRY + 128.0
        return self.hw.tma_issue_us + nbytes / self.hw.nvlink_bw
