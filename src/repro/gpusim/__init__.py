"""GPU/cluster timing simulator.

Models one representative rank of a homogeneous MD step as a task graph over
FIFO resources (CPU thread, GPU streams, copy engines, NIC) — exactly the
abstraction behind the paper's Fig. 1 / Fig. 2 schedule diagrams:

* a *resource* executes its tasks in enqueue order (a CUDA stream / the CPU
  program order);
* a task additionally waits for its dependencies (CUDA events, signals,
  message arrivals), optionally with a lag (wire time of a mirrored peer
  event — valid because the benchmark systems are homogeneous, so peers'
  timelines are statistically identical to ours).

:mod:`repro.gpusim.trace` recomputes the paper's Sec. 6.3 device-side
metrics (Local work, Non-local work, Non-overlap, Time per step) from the
evaluated graph, and :mod:`repro.gpusim.timeline` renders ASCII Gantt charts
equivalent to Figs. 1-2.
"""

from repro.gpusim.critical import CriticalPath, CriticalSegment, critical_path
from repro.gpusim.graph import Task, TaskGraph
from repro.gpusim.timeline import render_timeline
from repro.gpusim.trace import StepTimings, extract_timings

__all__ = [
    "CriticalPath",
    "CriticalSegment",
    "StepTimings",
    "Task",
    "TaskGraph",
    "critical_path",
    "extract_timings",
    "render_timeline",
]
