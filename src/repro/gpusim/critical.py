"""Critical-path analysis of an evaluated schedule.

The paper's contribution C4 includes "a detailed critical path and overlap
analysis using GPU cycle timers"; this module provides the analytic
counterpart for simulated schedules: walk back from a terminal task through
whichever constraint *bound* each start time (a dependency, with its lag, or
the preceding task on the same FIFO resource) and attribute the step time to
task kinds (compute kernels, packs, transfers, CPU launches, CPU waits,
idle gaps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.graph import Task, TaskGraph

#: Tolerance for "this constraint determined the start time".
_EPS = 1e-9


@dataclass(frozen=True)
class CriticalSegment:
    """One task on the critical path, plus the idle gap that preceded it."""

    name: str
    kind: str
    resource: str
    duration: float
    gap_before: float  # time on the path not covered by any task


@dataclass(frozen=True)
class CriticalPath:
    """The binding chain ending at a terminal task."""

    segments: tuple[CriticalSegment, ...]
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start

    def by_kind(self) -> dict[str, float]:
        """Time on the path attributed to each task kind (+ 'gap')."""
        out: dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.duration
            if seg.gap_before > _EPS:
                out["gap"] = out.get("gap", 0.0) + seg.gap_before
        return out

    def names(self) -> list[str]:
        return [s.name for s in self.segments]

    def render(self) -> str:
        lines = [f"critical path: {self.length:.1f} us ({len(self.segments)} tasks)"]
        for seg in self.segments:
            gap = f"  (+{seg.gap_before:.1f} idle)" if seg.gap_before > 0.05 else ""
            lines.append(
                f"  {seg.name:<40s} {seg.kind:<7s} {seg.duration:7.2f} us{gap}"
            )
        shares = self.by_kind()
        total = sum(shares.values()) or 1.0
        lines.append(
            "breakdown: "
            + ", ".join(f"{k} {v:.1f}us ({v / total:.0%})" for k, v in sorted(shares.items()))
        )
        return "\n".join(lines)


def _binding_predecessor(graph: TaskGraph, task: Task) -> Task | None:
    """The constraint that determined ``task.start`` (None if it started at 0
    or its window has slack)."""
    # Dependencies (with lags) take precedence when they bind exactly.
    best: Task | None = None
    for d in task.deps:
        dep = graph.tasks[d]
        if abs(dep.end + task.lags.get(d, 0.0) - task.start) < _EPS:
            if best is None or dep.end > best.end:
                best = dep
    if best is not None:
        return best
    # Otherwise the previous task on the same FIFO resource.
    prev = None
    for t in graph.by_resource().get(task.resource, []):
        if t.end <= task.start + _EPS and t is not task:
            if prev is None or t.end > prev.end:
                prev = t
    if prev is not None and abs(prev.end - task.start) < _EPS:
        return prev
    # Slack before this task: walk to whatever *latest* constraint exists.
    candidates = [graph.tasks[d] for d in task.deps]
    if prev is not None:
        candidates.append(prev)
    if not candidates:
        return None
    return max(candidates, key=lambda t: t.end)


def critical_path(graph: TaskGraph, terminal: str | None = None) -> CriticalPath:
    """Trace the binding chain back from ``terminal`` (default: last task)."""
    graph.evaluate()
    if terminal is None:
        terminal = max(graph.tasks.values(), key=lambda t: t.end).name
    task = graph.tasks[terminal]
    chain: list[Task] = [task]
    while True:
        pred = _binding_predecessor(graph, chain[-1])
        if pred is None:
            break
        chain.append(pred)
        if pred.start <= _EPS:
            break
    chain.reverse()
    segments = []
    for k, t in enumerate(chain):
        prev_end = chain[k - 1].end if k else chain[0].start
        gap = max(0.0, t.start - prev_end)
        segments.append(
            CriticalSegment(
                name=t.name,
                kind=t.kind,
                resource=t.resource,
                duration=t.duration,
                gap_before=gap,
            )
        )
    return CriticalPath(segments=tuple(segments), start=chain[0].start, end=chain[-1].end)
