"""Device-side timing extraction (the paper's Sec. 6.3 instrumentation).

The paper reads ``%%globaltimer`` at kernel start/end and derives:

* **Local work** — start to end of the local non-bonded kernel;
* **Non-local work** — start of the first pack to end of the last unpack
  (for the fused NVSHMEM path: the fused kernels' span);
* **Non-overlap** — end of local non-bonded to end of last unpack, clamped
  at zero: the part of communication exposed beyond local compute;
* **Time per step** — full step critical path excluding the per-200-step
  CPU tasks (DD repartitioning / neighbour search), which our per-step graph
  never contains.

We compute the same quantities from the evaluated task graph, using task
name conventions shared by the schedule builders in :mod:`repro.sched`:
``local_nb`` for the local kernel and the ``nonlocal:`` prefix for
everything between first pack and last unpack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.graph import TaskGraph

#: Name of the local non-bonded kernel task in every schedule.
LOCAL_NB = "local_nb"

#: Prefix marking tasks that belong to the non-local span.
NONLOCAL_PREFIX = "nonlocal:"


@dataclass(frozen=True)
class StepTimings:
    """Sec. 6.3 metrics for one step, microseconds."""

    local_work: float
    nonlocal_work: float
    non_overlap: float
    time_per_step: float

    def as_dict(self) -> dict[str, float]:
        return {
            "local_work_us": self.local_work,
            "nonlocal_work_us": self.nonlocal_work,
            "non_overlap_us": self.non_overlap,
            "time_per_step_us": self.time_per_step,
        }


def extract_timings(
    graph: TaskGraph,
    prefix: str = "",
    time_per_step: float | None = None,
) -> StepTimings:
    """Compute the paper's device-side metrics from an evaluated graph.

    ``prefix`` selects one step of a chained multi-step schedule (e.g.
    ``"s2:"``); ``time_per_step`` overrides the makespan with the
    steady-state step period measured by the driver.
    """
    graph.evaluate()
    local = graph.tasks.get(prefix + LOCAL_NB)
    if local is None:
        raise KeyError(f"schedule has no '{prefix}{LOCAL_NB}' task")
    nonlocal_tasks = graph.matching(prefix + NONLOCAL_PREFIX)
    if not nonlocal_tasks:
        raise KeyError(f"schedule has no '{prefix}{NONLOCAL_PREFIX}*' tasks")
    # GPU-side span only: CPU launch/sync tasks are not device timestamps.
    device = [t for t in nonlocal_tasks if t.kind in ("kernel", "pack", "comm")]
    if not device:
        kinds = sorted({t.kind for t in nonlocal_tasks})
        raise ValueError(
            f"non-local span '{prefix}{NONLOCAL_PREFIX}*' has no device tasks: "
            f"all {len(nonlocal_tasks)} matching task(s) are of CPU kinds "
            f"{kinds}; device timings need kernel/pack/comm tasks"
        )
    first = min(t.start for t in device)
    last = max(t.end for t in device)
    local_work = local.end - local.start
    nonlocal_work = last - first
    non_overlap = max(0.0, last - local.end)
    return StepTimings(
        local_work=local_work,
        nonlocal_work=nonlocal_work,
        non_overlap=non_overlap,
        time_per_step=graph.makespan() if time_per_step is None else time_per_step,
    )
