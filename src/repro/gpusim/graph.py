"""Deterministic task-graph evaluation over FIFO resources.

The core scheduling rule is the CUDA execution model in miniature:

    start(t) = max( end(previous task on t's resource),
                    max over deps d of end(d) + lag(d) )
    end(t)   = start(t) + duration(t)

Resources are FIFO: tasks run in the order they were enqueued, which is how
CUDA streams and a single CPU thread behave.  Cross-resource dependencies
are CUDA events / NVSHMEM signals / message arrivals; a dependency *lag*
models wire time for events mirrored from a symmetric peer (our peers run
the same schedule, so "peer's pulse-k send completed" is our own send-done
time plus the transfer latency).

Tasks must be added after their dependencies (program order), which also
guarantees acyclicity — a deadlocking schedule cannot be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Task kinds, used by trace extraction and timeline rendering.
KINDS = (
    "kernel",  # GPU compute kernel
    "pack",  # GPU pack/unpack kernel
    "comm",  # data transfer (link/NIC/copy-engine occupancy)
    "launch",  # CPU launch API call
    "sync",  # CPU blocking wait (event sync / MPI wait)
    "host",  # other CPU work
)


@dataclass
class Task:
    """One scheduled operation."""

    name: str
    resource: str
    duration: float  # microseconds
    kind: str = "kernel"
    deps: tuple[str, ...] = ()
    lags: dict[str, float] = field(default_factory=dict)
    start: float = 0.0
    end: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task '{self.name}': negative duration {self.duration}")
        if self.kind not in KINDS:
            raise ValueError(f"task '{self.name}': unknown kind '{self.kind}'")


class TaskGraph:
    """Builder + evaluator for one time-step's schedule."""

    def __init__(self) -> None:
        self.tasks: dict[str, Task] = {}
        self._order: list[str] = []
        self._evaluated = False

    def add(
        self,
        name: str,
        resource: str,
        duration: float,
        deps: tuple[str, ...] | list[str] = (),
        kind: str = "kernel",
        lags: dict[str, float] | None = None,
    ) -> Task:
        """Enqueue a task; all ``deps`` must already exist."""
        if name in self.tasks:
            raise ValueError(f"duplicate task name '{name}'")
        for d in deps:
            if d not in self.tasks:
                raise ValueError(f"task '{name}' depends on unknown task '{d}'")
        task = Task(
            name=name,
            resource=resource,
            duration=float(duration),
            kind=kind,
            deps=tuple(deps),
            lags=dict(lags or {}),
        )
        self.tasks[name] = task
        self._order.append(name)
        self._evaluated = False
        return task

    def evaluate(self) -> None:
        """Assign start/end to every task (single forward pass)."""
        resource_end: dict[str, float] = {}
        for name in self._order:
            t = self.tasks[name]
            start = resource_end.get(t.resource, 0.0)
            for d in t.deps:
                dep_end = self.tasks[d].end + t.lags.get(d, 0.0)
                start = max(start, dep_end)
            t.start = start
            t.end = start + t.duration
            resource_end[t.resource] = t.end
        self._evaluated = True

    # -- queries -------------------------------------------------------------

    def _require_evaluated(self) -> None:
        if not self._evaluated:
            self.evaluate()

    def end(self, name: str) -> float:
        self._require_evaluated()
        return self.tasks[name].end

    def makespan(self) -> float:
        """End of the last task — the step's critical-path time."""
        self._require_evaluated()
        return max((t.end for t in self.tasks.values()), default=0.0)

    def by_resource(self) -> dict[str, list[Task]]:
        self._require_evaluated()
        out: dict[str, list[Task]] = {}
        for name in self._order:
            t = self.tasks[name]
            out.setdefault(t.resource, []).append(t)
        return out

    def matching(self, prefix: str) -> list[Task]:
        """Tasks whose name starts with ``prefix``, in enqueue order."""
        self._require_evaluated()
        return [self.tasks[n] for n in self._order if n.startswith(prefix)]

    def busy_time(self, resource: str) -> float:
        """Total occupied time on a resource (tasks never overlap on one)."""
        self._require_evaluated()
        return sum(t.duration for t in self.tasks.values() if t.resource == resource)

    def overlap(self, a: str, b: str) -> float:
        """Temporal overlap of two tasks' [start, end) windows."""
        self._require_evaluated()
        ta, tb = self.tasks[a], self.tasks[b]
        return max(0.0, min(ta.end, tb.end) - max(ta.start, tb.start))
