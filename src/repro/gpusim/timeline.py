"""ASCII Gantt rendering of an evaluated schedule (Figs. 1-2 equivalents).

Each resource becomes one row; tasks become labelled blocks scaled to the
time axis.  Good enough to *see* the structural difference the paper draws:
the MPI schedule's CPU row is full of red waits between pulses, while the
NVSHMEM schedule's CPU row is a short burst of launches at step start and
the GPU rows overlap completely.
"""

from __future__ import annotations

import io

from repro.gpusim.graph import TaskGraph

#: Glyph per task kind for the block body.
_GLYPHS = {
    "kernel": "#",
    "pack": "+",
    "comm": "~",
    "launch": "L",
    "sync": "w",
    "host": ".",
}


def render_timeline(
    graph: TaskGraph,
    width: int = 100,
    resources: list[str] | None = None,
    show_labels: bool = True,
) -> str:
    """Render the evaluated graph as a fixed-width ASCII timeline."""
    graph.evaluate()
    by_res = graph.by_resource()
    names = resources if resources is not None else sorted(by_res)
    total = graph.makespan()
    if total <= 0:
        return "(empty schedule)\n"
    scale = width / total
    label_w = max((len(r) for r in names), default=0) + 2
    out = io.StringIO()
    out.write(f"time axis: 0 .. {total:.1f} us  ({width} cols)\n")
    for res in names:
        row = [" "] * width
        for t in by_res.get(res, []):
            c0 = int(t.start * scale)
            c1 = max(c0 + 1, int(t.end * scale))
            glyph = _GLYPHS.get(t.kind, "?")
            for c in range(c0, min(c1, width)):
                row[c] = glyph
            if show_labels:
                label = t.name.split(":")[-1][: max(0, c1 - c0)]
                for k, ch in enumerate(label):
                    if c0 + k < width:
                        row[c0 + k] = ch
        out.write(f"{res.ljust(label_w)}|{''.join(row)}|\n")
    out.write(
        "legend: #=kernel +=pack/unpack ~=transfer L=launch w=CPU wait .=host\n"
    )
    return out.getvalue()
