"""Campaign driver: seeded fault-injection runs, artifacts, and replay.

A *case* is one short DD simulation under one :class:`FaultPlan` (and
optionally a protocol mutation), with every invariant checked each step
against a fault-free serial-reference trajectory.  A *campaign* runs M
seeded cases for one backend, records ``chaos.*`` metrics through
:mod:`repro.obs`, and shrinks the first failure to a minimal failing
plan, dumped as a JSON artifact that :func:`replay_artifact` re-runs
deterministically (``repro chaos --replay``).
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.chaos.inject import ChaosInjector
from repro.chaos.invariants import (
    ChaosViolation,
    check_bit_identity,
    check_halo_partition,
)
from repro.chaos.mutations import apply_mutation
from repro.chaos.plan import FaultPlan
from repro.comm.scheduler import DeadlockError
from repro.nvshmem.signals import SignalError
from repro.obs.metrics import METRICS

#: Artifact schema version, bumped on incompatible layout changes.
ARTIFACT_VERSION = 1

#: Exceptions a chaos case converts into recorded violations.  Anything
#: else is a harness bug and propagates.
_FAILURES = (ChaosViolation, SignalError, DeadlockError, FloatingPointError, AssertionError)


@dataclass
class ChaosConfig:
    """The simulated system and backend one campaign runs against.

    The default is the cheapest honest multi-pulse configuration: 1400
    atoms on a 1x1x4 slab grid gives two z-pulses per rank (second
    neighbour forwarding plus the depOffset dependency chain) in well
    under a second per case.
    """

    backend: str = "nvshmem"
    atoms: int = 1400
    shape: tuple[int, int, int] = (1, 1, 4)
    max_pulses: int = 2
    steps: int = 3
    nstlist: int = 2
    buffer: float = 0.12
    system_seed: int = 3
    pes_per_node: int = 2  # nvshmem only: 1 = all-IB, n_ranks = all-NVLink
    executor: str = "serial"
    n_faults: int = 4
    kernel: str = "segment"  # non-bonded kernel registry name
    max_build_bytes: int | None = None  # pair-list build working-set cap
    #: Density scenario of the synthetic system ("uniform", "slab",
    #: "droplet", "gap") — inhomogeneous cases exercise DLB under faults.
    scenario: str = "uniform"
    #: Dynamic load balancing mode.  Chaos campaigns must use "off" or
    #: the deterministic "pairs" mode: the bit-identity oracle is the
    #: same config on the reference backend, and "measured" would let
    #: wall-clock noise steer the two runs into different decompositions.
    dlb: str = "off"

    @property
    def n_ranks(self) -> int:
        return int(np.prod(self.shape))

    @property
    def system_label(self) -> str:
        """The spec-side system label ("1400" or "slab-1400")."""
        if self.scenario == "uniform":
            return str(self.atoms)
        return f"{self.scenario}-{self.atoms}"

    def to_dict(self) -> dict:
        d = asdict(self)
        d["shape"] = list(self.shape)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosConfig":
        d = dict(d)
        d["shape"] = tuple(d["shape"])
        return cls(**d)

    def to_spec(self, fault_plan: FaultPlan | None = None):
        """The equivalent :class:`repro.serve.spec.SimulationSpec`.

        ``spec.seed`` carries the *system* seed (plan seeds travel inside
        the embedded ``fault_plan``), so the spec builds the same system
        and NVSHMEM topology this config does.
        """
        # Imported here, not at module level: serve.spec imports
        # chaos.plan, whose package __init__ pulls this module back in.
        from repro.serve.spec import SimulationSpec

        if self.dlb == "measured":
            raise ValueError(
                "chaos campaigns cannot use dlb='measured': the bit-identity "
                "oracle re-runs the same config on the reference backend, and "
                "wall-clock-driven resizing would diverge the two "
                "decompositions; use the deterministic 'pairs' mode"
            )
        return SimulationSpec(
            kind="chaos",
            system=self.system_label,
            steps=self.steps,
            shape=tuple(self.shape),
            max_pulses=self.max_pulses,
            backend=self.backend,
            executor=self.executor,
            pes_per_node=self.pes_per_node,
            nstlist=self.nstlist,
            buffer=self.buffer,
            kernel=self.kernel,
            max_build_bytes=self.max_build_bytes,
            seed=self.system_seed,
            n_faults=self.n_faults,
            fault_plan=fault_plan,
            dlb=self.dlb,
        )


@dataclass
class CaseResult:
    """Outcome of one fault-injected run."""

    plan: FaultPlan
    violations: list[str] = field(default_factory=list)
    steps_completed: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.violations)


@dataclass
class CampaignResult:
    """Outcome of a seeded campaign for one backend."""

    config: ChaosConfig
    runs: int = 0
    failures: list[CaseResult] = field(default_factory=list)
    artifact: dict | None = None

    @property
    def failed(self) -> bool:
        return bool(self.failures)


# -- building blocks -----------------------------------------------------------


def _make_sim(cfg: ChaosConfig, backend: str | None = None, executor: str | None = None):
    """Build the case's simulator from the config's spec.

    ``backend``/``executor`` are registry-name overrides (the reference
    oracle swaps both); construction itself goes through
    ``DDSimulator.from_spec`` so chaos cases and serve jobs share one
    construction path.
    """
    from repro.dd import DDSimulator

    spec = cfg.to_spec()
    if backend is not None:
        spec = spec.with_(backend=backend)
    if executor is not None:
        spec = spec.with_(executor=executor)
    sim = DDSimulator.from_spec(spec)
    return sim.system, sim, sim.backend


def reference_trajectory(cfg: ChaosConfig) -> list[np.ndarray]:
    """Fault-free serial-reference positions after each step.

    The bit-identity oracle: reference backend, serial executor, no
    chaos.  Every backend/executor combination must reproduce it bit for
    bit (the engine's own tests establish that without faults; the chaos
    campaign asserts it *with* faults).
    """
    system, sim, _ = _make_sim(cfg, backend="reference", executor="serial")
    out = []
    with sim:
        for _ in range(cfg.steps):
            sim.step()
            out.append(system.positions.copy())
    return out


def run_case(
    cfg: ChaosConfig,
    plan: FaultPlan,
    mutation: str | None = None,
    reference: list[np.ndarray] | None = None,
) -> CaseResult:
    """One fault-injected simulation with all invariants checked per step."""
    if reference is None:
        reference = reference_trajectory(cfg)
    system, sim, backend = _make_sim(cfg)
    result = CaseResult(plan=plan)
    mut = apply_mutation(mutation) if mutation else nullcontext()
    with mut, sim, ChaosInjector(plan, backend=backend) as inj:
        for k in range(cfg.steps):
            try:
                sim.step()
                result.violations.extend(inj.state.drain_violations())
                if not result.violations:
                    check_bit_identity(system.positions, reference[k], step=k)
            except _FAILURES as err:
                result.violations.append(f"step {k}: {type(err).__name__}: {err}")
                result.violations.extend(inj.state.drain_violations())
            if result.violations:
                break
            result.steps_completed += 1
        if sim.cluster is not None and not result.violations:
            try:
                check_halo_partition(sim.cluster.plan)
            except ChaosViolation as err:
                result.violations.append(f"partition: {err}")
    return result


# -- campaigns and artifacts ---------------------------------------------------


def make_artifact(
    cfg: ChaosConfig, plan: FaultPlan, mutation: str | None, violations: list[str]
) -> dict:
    """The replayable record of a (shrunk) failing schedule."""
    return {
        "version": ARTIFACT_VERSION,
        "config": cfg.to_dict(),
        "plan": plan.to_dict(),
        "mutation": mutation,
        "violations": violations,
    }


def write_artifact(path: str, artifact: dict) -> str:
    with open(path, "w") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    return path


def replay_artifact(path_or_dict) -> CaseResult:
    """Deterministically re-run a dumped failing schedule."""
    if isinstance(path_or_dict, dict):
        artifact = path_or_dict
    else:
        with open(path_or_dict) as fh:
            artifact = json.load(fh)
    if artifact.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"artifact version {artifact.get('version')} != {ARTIFACT_VERSION}"
        )
    cfg = ChaosConfig.from_dict(artifact["config"])
    plan = FaultPlan.from_dict(artifact["plan"])
    METRICS.counter("chaos.replays").inc()
    return run_case(cfg, plan, mutation=artifact.get("mutation"))


def run_campaign(
    cfg: ChaosConfig,
    runs: int = 50,
    seed0: int = 0,
    mutation: str | None = None,
    shrink: bool = True,
    log=None,
) -> CampaignResult:
    """Run ``runs`` seeded fault plans; shrink and record the first failure."""
    from repro.chaos.shrink import shrink_plan

    reference = reference_trajectory(cfg)
    result = CampaignResult(config=cfg)
    for i in range(runs):
        plan = FaultPlan.generate(
            seed0 + i,
            n_faults=cfg.n_faults,
            n_ranks=cfg.n_ranks,
            n_pulses=cfg.max_pulses,
            backend=cfg.backend,
        )
        case = run_case(cfg, plan, mutation=mutation, reference=reference)
        result.runs += 1
        METRICS.counter("chaos.runs", backend=cfg.backend).inc()
        if case.failed:
            METRICS.counter("chaos.failures", backend=cfg.backend).inc()
            if log is not None:
                log.warning(
                    "chaos[%s] seed %d FAILED: %s",
                    cfg.backend, plan.seed, "; ".join(case.violations),
                )
            result.failures.append(case)
            if result.artifact is None and shrink:
                shrunk = shrink_plan(cfg, plan, mutation=mutation, reference=reference)
                confirm = run_case(cfg, shrunk, mutation=mutation, reference=reference)
                result.artifact = make_artifact(cfg, shrunk, mutation, confirm.violations)
    return result
