"""Fault injection: wiring a :class:`FaultPlan` into the running stack.

The comm/nvshmem stack constructs its schedulers, runtimes, and signal
arrays internally (per bind, per exchange), so injection cannot pass a
collaborator down through APIs.  Instead, each hooked class exposes a
``_default_chaos`` class attribute consulted at use time, and executors
consult :data:`repro.par.base.phase_chaos`; :class:`ChaosInjector`
installs one :class:`ChaosState` into all of them for the duration of a
``with`` block and restores the previous values on exit.  No production
API changes, no behavioural difference when nothing is installed.

The injector can additionally wrap one backend *instance* (shadowing its
``exchange_coordinates`` bound method) to NaN-poison halo slots before
each exchange, verify halo coverage after it, and defer/reorder
``on_pulse`` notifications across ranks — all behind the backend's
unchanged public signature.
"""

from __future__ import annotations

import time

import numpy as np

import repro.par.base as par_base
from repro.chaos.invariants import check_halo_coverage
from repro.chaos.plan import Fault, FaultPlan
from repro.comm.scheduler import CooperativeScheduler
from repro.nvshmem.runtime import NvshmemRuntime
from repro.nvshmem.signals import SignalArray
from repro.obs.metrics import METRICS

#: Safety cap on injected phase delays (seconds).  Campaign-generated
#: plans sample 50-500 us; the cap only bounds hand-written plans, and
#: must leave room for a straggler that dominates genuine phase cost on
#: a loaded host (the imbalance metric compares run-averaged per-rank
#: costs, so the injected delay has to move a whole rank's mean).
_MAX_PHASE_DELAY_S = 0.02


class ChaosState:
    """Mutable per-run fault state plus passive invariant observers.

    One instance is shared by every hook for the duration of an injected
    run.  Faults are consumed as they fire (a drop fires once; holds and
    hides count down), and protocol violations observed along the way are
    collected in :attr:`violations` for the harness to drain — raising
    from deep inside a backend would tangle recovery, and some checks
    only conclude at step end anyway.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.violations: list[str] = []
        self._delays: list[tuple[Fault, int]] = []  # (fault, remaining rounds)
        self._hides: list[tuple[Fault, int]] = []  # (fault, remaining polls)
        self._drops: list[tuple[Fault, bool]] = []  # (fault, fired)
        self._perturbs: list[Fault] = []
        self.defer_seed: int | None = None
        for f in plan:
            if f.kind == "delay_task":
                self._delays.append((f, f.count))
            elif f.kind == "hide_signal":
                self._hides.append((f, f.count))
            elif f.kind == "drop_op":
                self._drops.append((f, False))
            elif f.kind == "perturb_phase":
                self._perturbs.append(f)
            elif f.kind == "defer_notify" and self.defer_seed is None:
                self.defer_seed = f.count
        self._ops_seen = 0

    # -- bookkeeping -----------------------------------------------------------

    def record(self, kind: str, msg: str) -> None:
        self.violations.append(f"{kind}: {msg}")
        METRICS.counter("chaos.violations", kind=kind).inc()

    def drain_violations(self) -> list[str]:
        out, self.violations = self.violations, []
        return out

    def _fired(self, kind: str) -> None:
        METRICS.counter("chaos.faults_fired", kind=kind).inc()

    # -- scheduler hooks -------------------------------------------------------

    def allow_task(self, name: str) -> bool:
        """May this runnable task resume, or is it being held this round?"""
        for i, (f, remaining) in enumerate(self._delays):
            if remaining <= 0 or (f.target and f.target not in name):
                continue
            if f.pulse >= 0 and f"pulse={f.pulse}]" not in name:
                continue
            self._delays[i] = (f, remaining - 1)
            self._fired("delay_task")
            return False
        return True

    def tick_stall(self) -> bool:
        """Stalled with injected delays outstanding?  Burn one round of each.

        Keeps liveness: a held task (or a hidden signal nobody happens to
        poll) must not be mistaken for a protocol deadlock, and every
        stalled round brings all countdown faults closer to expiry.
        """
        active = False
        for i, (f, remaining) in enumerate(self._delays):
            if remaining > 0:
                self._delays[i] = (f, remaining - 1)
                active = True
        for i, (f, remaining) in enumerate(self._hides):
            if remaining > 0:
                self._hides[i] = (f, remaining - 1)
                active = True
        return active

    # -- signal hooks ----------------------------------------------------------

    def hide_signal(self, sig: SignalArray, pe: int, idx: int) -> bool:
        """Should this (set) signal stay invisible to this poll?"""
        for i, (f, remaining) in enumerate(self._hides):
            if remaining <= 0 or (f.target and f.target != sig.name):
                continue
            if f.rank >= 0 and f.rank != pe:
                continue
            if f.pulse >= 0 and f.pulse != idx:
                continue
            self._hides[i] = (f, remaining - 1)
            self._fired("hide_signal")
            return True
        return False

    def on_store(self, sig: SignalArray, pe: int, idx: int, value: int, released: bool) -> None:
        """Observe a signal store: monotonicity + the store ledger."""
        last = getattr(sig, "_chaos_last", None)
        if last is None:
            last = sig._chaos_last = {}
            sig._chaos_stored = set()
        prev = last.get((pe, idx))
        if prev is not None and value <= prev:
            self.record(
                "signal_monotonicity",
                f"signal '{sig.name}'[{idx}] on PE {pe} stored {value} "
                f"after {prev} (epoch values must increase)",
            )
        last[(pe, idx)] = value
        sig._chaos_stored.add((pe, idx, value))

    def on_wait(self, sig: SignalArray, pe: int, idx: int, value: int) -> None:
        """Observe a satisfied acquire-wait: must follow the matching store.

        This is the depOffset-ordering invariant: dependent data may only
        be consumed after its pulse's signal.  A skipped fence trips it
        even on interleavings where the data race resolves benignly.
        """
        stored = getattr(sig, "_chaos_stored", None)
        if stored is None or (pe, idx, value) not in stored:
            self.record(
                "dep_ordering",
                f"wait on '{sig.name}'[{idx}] PE {pe} (value {value}) was "
                f"satisfied before the matching signal store: dependent "
                f"data consumed without its pulse's fence",
            )

    # -- runtime hook ----------------------------------------------------------

    def drop_op(self, op) -> bool:
        """Should the proxy skip (drop-and-requeue) this pending op?"""
        self._ops_seen += 1
        for i, (f, fired) in enumerate(self._drops):
            if fired or f.count != self._ops_seen:
                continue
            self._drops[i] = (f, True)
            self._fired("drop_op")
            return True
        return False

    # -- executor hook ---------------------------------------------------------

    def phase_chaos(self, phase: str, rank: int) -> None:
        """Stagger a rank's phase dispatch (thread/process executors)."""
        for f in self._perturbs:
            if f.target and f.target != phase:
                continue
            if f.rank >= 0 and f.rank != rank:
                continue
            self._fired("perturb_phase")
            time.sleep(min(f.delay_us * 1e-6, _MAX_PHASE_DELAY_S))


class ChaosInjector:
    """Install a :class:`ChaosState` into every hook point, scoped by ``with``.

    ``backend`` (optional) is additionally wrapped at the *instance* level:
    halo slots are NaN-poisoned before each coordinate exchange, coverage
    is verified after it, and ``on_pulse`` notifications are deferred and
    reordered across ranks when the plan carries a ``defer_notify`` fault
    (per-rank pulse order is preserved, as the backend contract requires).
    """

    def __init__(self, plan: FaultPlan, backend=None, poison: bool = True):
        self.state = ChaosState(plan)
        self.backend = backend
        self.poison = poison
        self._saved: tuple | None = None
        self._wrapped = False

    def __enter__(self) -> "ChaosInjector":
        self._saved = (
            CooperativeScheduler._default_chaos,
            SignalArray._default_chaos,
            NvshmemRuntime._default_chaos,
            par_base.phase_chaos,
        )
        CooperativeScheduler._default_chaos = self.state
        SignalArray._default_chaos = self.state
        NvshmemRuntime._default_chaos = self.state
        par_base.phase_chaos = self.state.phase_chaos
        if self.backend is not None:
            self._wrap_backend()
        return self

    def __exit__(self, *exc) -> bool:
        (
            CooperativeScheduler._default_chaos,
            SignalArray._default_chaos,
            NvshmemRuntime._default_chaos,
            par_base.phase_chaos,
        ) = self._saved
        if self._wrapped:
            del self.backend.__dict__["exchange_coordinates"]
            self._wrapped = False
        return False

    def _wrap_backend(self) -> None:
        orig = self.backend.exchange_coordinates
        state = self.state
        poison = self.poison

        def wrapped(cluster, on_pulse=None):
            if poison:
                cluster.invalidate_halo_coords()
            if on_pulse is not None and state.defer_seed is not None:
                deferred: list[tuple[int, int]] = []
                orig(cluster, on_pulse=lambda r, p: deferred.append((r, p)))
                _replay_deferred(deferred, on_pulse, state.defer_seed)
            else:
                orig(cluster, on_pulse=on_pulse)
            check_halo_coverage(cluster)

        self.backend.__dict__["exchange_coordinates"] = wrapped
        self._wrapped = True


def _replay_deferred(deferred, on_pulse, seed: int) -> None:
    """Re-deliver batched notifications in a seeded cross-rank shuffle.

    Per-rank pulse order is preserved (each rank's queue drains FIFO);
    only the interleaving *between* ranks is randomized — exactly the
    freedom the ``on_pulse`` contract grants a backend.
    """
    rng = np.random.default_rng(seed)
    queues: dict[int, list[int]] = {}
    order: list[int] = []
    for rank, pid in deferred:
        if rank not in queues:
            queues[rank] = []
            order.append(rank)
        queues[rank].append(pid)
    while order:
        rank = order[int(rng.integers(len(order)))]
        on_pulse(rank, queues[rank].pop(0))
        if not queues[rank]:
            order.remove(rank)
