"""Shrinking: reduce a failing fault plan to a minimal failing schedule.

Greedy delta-debugging over the fault list (try dropping each fault;
keep any reduction that still fails) followed by numeric shrinking
(halve hold/hide counts and delays while the failure persists).  Every
candidate is verified by a full deterministic re-run, so the shrunk plan
in the artifact is failing *by construction*, not by extrapolation.
"""

from __future__ import annotations

from dataclasses import replace

from repro.chaos.plan import Fault, FaultPlan
from repro.obs.metrics import METRICS


def shrink_plan(cfg, plan: FaultPlan, mutation: str | None = None, reference=None) -> FaultPlan:
    """Return a minimal plan (same seed) whose run still fails."""
    from repro.chaos.campaign import run_case

    def fails(faults: list[Fault]) -> bool:
        METRICS.counter("chaos.shrink_attempts").inc()
        return run_case(
            cfg, FaultPlan(seed=plan.seed, faults=faults), mutation=mutation,
            reference=reference,
        ).failed

    current = list(plan.faults)
    # Pass 1: drop whole faults (first-found, restart — greedy ddmin with
    # subset size 1, sufficient at our plan sizes of <= ~8 faults).
    shrunk = True
    while shrunk and current:
        shrunk = False
        for i in range(len(current)):
            cand = current[:i] + current[i + 1 :]
            if fails(cand):
                current = cand
                shrunk = True
                break
    # Pass 2: shrink numeric magnitudes of the survivors.
    for i, f in enumerate(current):
        for fld, floor in (("count", 1), ("delay_us", 0.0)):
            while getattr(current[i], fld) > floor:
                half = type(getattr(current[i], fld))(getattr(current[i], fld) // 2) \
                    if fld == "count" else getattr(current[i], fld) / 2
                if half < floor or half == getattr(current[i], fld):
                    break
                cand = list(current)
                cand[i] = replace(current[i], **{fld: half})
                if not fails(cand):
                    break
                current = cand
    return FaultPlan(seed=plan.seed, faults=current)
