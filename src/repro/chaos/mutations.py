"""Protocol mutations: deliberately broken variants for harness self-tests.

A verification harness that never fails proves nothing.  Each mutation
here weakens the halo protocol in a way the paper identifies as a real
bug class; running a chaos campaign under a mutation MUST produce
detected invariant violations, or the harness is vacuous (the
mutation-testing discipline).  The required self-test: skip one signal
fence and assert the campaign catches it with a replayable shrunk plan.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.nvshmem.signals import SignalArray


def _skip_fence(signal_name: str):
    """Patch ``acquire_check`` to succeed unconditionally for one signal.

    The waiter proceeds as if the fence were satisfied: dependent packing
    and force accumulation run against whatever data happens to be there.
    The wait is still reported to the chaos observer, so the
    depOffset-ordering invariant sees a wait with no preceding store.
    """

    @contextmanager
    def patch():
        orig = SignalArray.acquire_check

        def mutated(self, pe, idx, value, needs_data=True):
            if self.name == signal_name:
                chaos = SignalArray._default_chaos
                if chaos is not None:
                    chaos.on_wait(self, pe, idx, value)
                return True
            return orig(self, pe, idx, value, needs_data)

        SignalArray.acquire_check = mutated
        try:
            yield
        finally:
            SignalArray.acquire_check = orig

    return patch


def _relax_release(signal_name: str):
    """Patch ``release_store`` into a relaxed store for one signal.

    Drops the data-visibility ordering of the sender's signal — the exact
    misuse the strict signal layer exists to catch (``SignalError``).
    """

    @contextmanager
    def patch():
        orig = SignalArray.release_store

        def mutated(self, pe, idx, value):
            if self.name == signal_name:
                self.relaxed_store(pe, idx, value)
                return
            orig(self, pe, idx, value)

        SignalArray.release_store = mutated
        try:
            yield
        finally:
            SignalArray.release_store = orig

    return patch


#: Registry of named mutations; each value is a context-manager factory.
MUTATIONS = {
    "skip-coord-fence": _skip_fence("coordSig"),
    "skip-force-fence": _skip_fence("forceSig"),
    "relaxed-coord-release": _relax_release("coordSig"),
}


@contextmanager
def apply_mutation(name: str | None):
    """Apply a registered mutation for the duration of a ``with`` block."""
    if name is None:
        yield
        return
    try:
        factory = MUTATIONS[name]
    except KeyError:
        raise KeyError(f"unknown mutation '{name}', available: {sorted(MUTATIONS)}") from None
    with factory():
        yield
