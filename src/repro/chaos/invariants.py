"""Protocol invariants the chaos harness checks on every run.

Four invariants, mirroring what the paper's protocol must guarantee under
any interleaving (Sec. 4; Algorithms 3-6):

* **Halo partition/coverage** — every non-local atom's coordinate is
  delivered exactly once per exchange.  Exactly-once is enforced
  structurally (the per-rank pulse receive ranges partition the halo
  region, :func:`check_halo_partition`) plus dynamically (halo slots are
  NaN-poisoned before the exchange and must all be finite after,
  :func:`check_halo_coverage` — a pulse that never landed leaves NaN).
* **Signal monotonicity** — per signal slot, stored values (epochs) only
  increase (checked by the chaos state's store observer).
* **depOffset ordering** — no dependent data is consumed before its
  pulse's signal: every satisfied acquire-wait must be preceded by the
  matching store (checked by the store/wait observers; a skipped fence
  surfaces here even when the data race happens to resolve benignly).
* **Bit-identity** — end-of-step positions equal the serial reference's
  bit for bit (:func:`check_bit_identity`).
"""

from __future__ import annotations

import numpy as np


class ChaosViolation(AssertionError):
    """A protocol invariant failed under fault injection."""


def check_halo_partition(plan) -> None:
    """Pulse receive ranges must exactly tile each rank's halo region.

    Static half of exactly-once delivery: disjointness (no atom delivered
    by two pulses) and completeness (no atom delivered by none).
    """
    for rp in plan.ranks:
        spans = sorted((p.atom_offset, p.recv_size, p.pulse_id) for p in rp.pulses)
        cursor = rp.n_home
        for off, size, pid in spans:
            if off != cursor:
                raise ChaosViolation(
                    f"rank {rp.rank}: pulse {pid} receives at offset {off}, "
                    f"expected {cursor} (halo ranges must tile [n_home, n_local))"
                )
            cursor += size
        if cursor != rp.n_local:
            raise ChaosViolation(
                f"rank {rp.rank}: pulse ranges cover up to {cursor}, "
                f"but n_local is {rp.n_local}"
            )


def check_halo_coverage(cluster) -> None:
    """Every poisoned halo slot must have been overwritten by the exchange.

    Dynamic half of exactly-once delivery: run after an exchange whose
    halo slots were NaN-poisoned first (``invalidate_halo_coords``).  Any
    remaining NaN means a pulse's data never arrived — or arrived from a
    source that itself read undelivered (poisoned) data.
    """
    for rp in cluster.plan.ranks:
        halo = cluster.local_pos[rp.rank][rp.n_home:]
        bad = ~np.isfinite(halo)
        if np.any(bad):
            rows = np.unique(np.nonzero(bad)[0])
            raise ChaosViolation(
                f"rank {rp.rank}: {rows.size} halo rows not delivered "
                f"(first at local row {rp.n_home + int(rows[0])}): stale or "
                f"missing pulse data survived the exchange"
            )


def check_bit_identity(positions: np.ndarray, reference: np.ndarray, step: int) -> None:
    """End-of-step positions must equal the serial reference bit for bit."""
    if positions.shape != reference.shape:
        raise ChaosViolation(
            f"step {step}: position array shape {positions.shape} != "
            f"reference {reference.shape}"
        )
    if not np.array_equal(positions, reference):
        diff = np.abs(positions - reference)
        diff = np.where(np.isfinite(diff), diff, np.inf)
        raise ChaosViolation(
            f"step {step}: trajectory diverged from the serial reference "
            f"(max |Δ| = {float(diff.max()):.3e} nm over "
            f"{int(np.count_nonzero(diff))} coordinates)"
        )
