"""Seeded fault plans: what to break, where, and for how long.

A :class:`FaultPlan` is a small, JSON-serializable description of the
faults one chaos run injects.  Plans are generated from a seed (so a
campaign is just a range of seeds), and shrunk plans are dumped as JSON
artifacts that replay deterministically (``repro chaos --replay``).

Fault kinds
-----------
``delay_task``
    Hold a runnable scheduler task (matched by name substring) for
    ``count`` extra rounds — a slow threadblock group.
``hide_signal``
    Make a *set* signal slot invisible for ``count`` polls — reordered
    signal visibility (store buffering, NIC completion reordering).
``drop_op``
    Skip the ``count``-th intercepted proxy operation once, requeueing it
    at the back of the queue — a retried IB transport.
``perturb_phase``
    Sleep ``delay_us`` before a rank's phase dispatch in the thread or
    process executor — a straggler rank.
``defer_notify``
    Shuffle the cross-rank order of ``on_pulse`` notifications (per-rank
    pulse order is preserved, as the backend contract requires), seeded by
    ``count`` — a callback arriving in a different delivery order.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

#: All fault kinds, in generation-weight order.
FAULT_KINDS = ("delay_task", "hide_signal", "drop_op", "perturb_phase", "defer_notify")

#: Kinds meaningful for backends that do not use the scheduler/NVSHMEM
#: substrate (reference, mpi, threadmpi).
GENERIC_KINDS = ("perturb_phase", "defer_notify")

_SIGNAL_NAMES = ("coordSig", "forceSig")
_TASK_PREFIXES = ("coordX", "serveF", "accF")
_PHASES = ("pairs", "forces_local", "forces_nonlocal", "integrate")


@dataclass(frozen=True)
class Fault:
    """One injected fault; fields unused by a kind keep their defaults."""

    kind: str
    target: str = ""  # task-name substring / signal name / phase name
    rank: int = -1  # -1 matches any rank / PE
    pulse: int = -1  # -1 matches any pulse / signal slot
    count: int = 1  # rounds held / polls hidden / op ordinal / defer sub-seed
    delay_us: float = 0.0  # perturb_phase sleep

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind '{self.kind}', use one of {FAULT_KINDS}")
        if self.count < 0:
            raise ValueError("count must be >= 0")

    def describe(self) -> str:
        bits = [self.kind]
        if self.target:
            bits.append(self.target)
        if self.rank >= 0:
            bits.append(f"rank={self.rank}")
        if self.pulse >= 0:
            bits.append(f"pulse={self.pulse}")
        bits.append(f"count={self.count}")
        if self.delay_us:
            bits.append(f"delay_us={self.delay_us:g}")
        return "[" + " ".join(bits) + "]"


@dataclass
class FaultPlan:
    """A seeded set of faults for one chaos run."""

    seed: int
    faults: list[Fault] = field(default_factory=list)

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def describe(self) -> str:
        if not self.faults:
            return f"plan(seed={self.seed}, no faults)"
        return f"plan(seed={self.seed}, " + " ".join(f.describe() for f in self.faults) + ")"

    # -- generation -----------------------------------------------------------

    @classmethod
    def generate(
        cls,
        seed: int,
        n_faults: int = 4,
        n_ranks: int = 4,
        n_pulses: int = 2,
        backend: str = "nvshmem",
    ) -> "FaultPlan":
        """Draw ``n_faults`` faults from the seeded distribution.

        Backends without a scheduler/NVSHMEM substrate only receive the
        generic kinds (phase perturbation, notification deferral).
        """
        rng = np.random.default_rng(seed)
        kinds = FAULT_KINDS if backend == "nvshmem" else GENERIC_KINDS
        faults = []
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            rank = int(rng.integers(-1, n_ranks))
            pulse = int(rng.integers(-1, n_pulses))
            if kind == "delay_task":
                prefix = _TASK_PREFIXES[int(rng.integers(len(_TASK_PREFIXES)))]
                target = prefix if rank < 0 else f"{prefix}[rank={rank}"
                faults.append(
                    Fault(kind, target=target, rank=rank, pulse=pulse,
                          count=int(rng.integers(1, 7)))
                )
            elif kind == "hide_signal":
                name = _SIGNAL_NAMES[int(rng.integers(len(_SIGNAL_NAMES)))]
                faults.append(
                    Fault(kind, target=name, rank=rank, pulse=pulse,
                          count=int(rng.integers(1, 9)))
                )
            elif kind == "drop_op":
                faults.append(Fault(kind, count=int(rng.integers(1, 9))))
            elif kind == "perturb_phase":
                phase = _PHASES[int(rng.integers(len(_PHASES)))]
                faults.append(
                    Fault(kind, target=phase, rank=rank,
                          delay_us=float(rng.integers(50, 501)))
                )
            else:  # defer_notify
                faults.append(Fault(kind, count=int(rng.integers(0, 1 << 16))))
        return cls(seed=seed, faults=faults)

    # -- (de)serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "faults": [asdict(f) for f in self.faults]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(seed=int(d["seed"]), faults=[Fault(**f) for f in d.get("faults", [])])

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))
