"""Deterministic fault injection and schedule fuzzing for the halo stack.

The paper's central correctness claim is that the fused halo kernels are
safe under *any* interleaving — ordered only by per-pulse signals and the
depOffset dependency split, never by scheduling luck.  This package is
the machinery that tests that claim adversarially:

* :mod:`repro.chaos.plan` — seeded, JSON-serializable :class:`FaultPlan`s
  (delayed tasks, hidden signals, dropped proxy ops, straggler ranks,
  reordered notifications).
* :mod:`repro.chaos.inject` — :class:`ChaosInjector` wires a plan into
  the scheduler, NVSHMEM runtime/signals, executors, and any backend
  instance without changing their APIs.
* :mod:`repro.chaos.invariants` — halo coverage, signal monotonicity,
  depOffset ordering, end-of-step bit-identity vs the serial reference.
* :mod:`repro.chaos.campaign` — seeded campaigns (``repro chaos``),
  ``chaos.*`` metrics, failure shrinking, JSON artifacts, replay.
* :mod:`repro.chaos.mutations` — deliberately broken protocol variants
  proving the harness actually detects what it claims to detect.
"""

from repro.chaos.campaign import (
    CampaignResult,
    CaseResult,
    ChaosConfig,
    make_artifact,
    reference_trajectory,
    replay_artifact,
    run_campaign,
    run_case,
    write_artifact,
)
from repro.chaos.inject import ChaosInjector, ChaosState
from repro.chaos.invariants import (
    ChaosViolation,
    check_bit_identity,
    check_halo_coverage,
    check_halo_partition,
)
from repro.chaos.mutations import MUTATIONS, apply_mutation
from repro.chaos.plan import FAULT_KINDS, Fault, FaultPlan
from repro.chaos.shrink import shrink_plan

__all__ = [
    "FAULT_KINDS",
    "MUTATIONS",
    "CampaignResult",
    "CaseResult",
    "ChaosConfig",
    "ChaosInjector",
    "ChaosState",
    "ChaosViolation",
    "Fault",
    "FaultPlan",
    "apply_mutation",
    "check_bit_identity",
    "check_halo_coverage",
    "check_halo_partition",
    "make_artifact",
    "reference_trajectory",
    "replay_artifact",
    "run_campaign",
    "run_case",
    "shrink_plan",
    "write_artifact",
]
