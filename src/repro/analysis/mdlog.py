"""mdrun-style run logs and their parser (the artifact's A2 workflow).

The paper's artifact post-processes ``mdrun`` log files: every run writes a
log whose final ``Performance:`` line carries ns/day, and
``extract_*_performance.py`` scripts turn directories of such logs into the
CSVs behind Figs. 3-5.  We mirror that pipeline: simulated or functional
runs are written as GROMACS-flavoured logs, and :func:`parse_log` /
:func:`collect_performance` recover the numbers — so the reproduction's
post-processing path has the same shape as the original artifact's.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.util.tables import Table
from repro.util.units import ms_per_step_to_ns_per_day


@dataclass(frozen=True)
class RunRecord:
    """One run's headline numbers, as found in its log."""

    label: str
    backend: str
    n_ranks: int
    n_atoms: int
    ns_per_day: float
    ms_per_step: float


def write_log(
    path: str | Path,
    label: str,
    backend: str,
    n_ranks: int,
    n_atoms: int,
    time_per_step_us: float,
    grid: tuple[int, int, int] | None = None,
    extra: dict | None = None,
) -> Path:
    """Write a GROMACS-flavoured run log with the standard footer."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ms = time_per_step_us * 1e-3
    nsday = ms_per_step_to_ns_per_day(ms)
    lines = [
        f"Log file opened: {label}",
        f"GROMACS-repro mdrun (backend: {backend})",
        f"Running on {n_ranks} MPI ranks",
        f"System: {n_atoms} atoms",
    ]
    if grid is not None:
        lines.append(
            f"Domain decomposition grid {grid[0]} x {grid[1]} x {grid[2]}, "
            f"separate PME ranks 0"
        )
    for k, v in (extra or {}).items():
        lines.append(f"{k}: {v}")
    lines += [
        "",
        "               Core t (s)   Wall t (s)        (%)",
        f"       Time:      0.000      {ms:10.3f}      100.0",
        "                 (ns/day)    (hour/ns)",
        f"Performance:    {nsday:9.3f}    {24.0 / nsday if nsday else 0.0:9.3f}",
    ]
    path.write_text("\n".join(lines) + "\n")
    return path


_PERF_RE = re.compile(r"^Performance:\s+([0-9.eE+-]+)")
_RANKS_RE = re.compile(r"^Running on (\d+) MPI ranks")
_ATOMS_RE = re.compile(r"^System: (\d+) atoms")
_BACKEND_RE = re.compile(r"backend: (\w+)")
_LABEL_RE = re.compile(r"^Log file opened: (.+)$")


def parse_log(path: str | Path) -> RunRecord:
    """Extract the run record from one log (the artifact's parsing step)."""
    text = Path(path).read_text()
    perf = ranks = atoms = backend = label = None
    for line in text.splitlines():
        if m := _PERF_RE.match(line):
            perf = float(m.group(1))
        elif m := _RANKS_RE.match(line):
            ranks = int(m.group(1))
        elif m := _ATOMS_RE.match(line):
            atoms = int(m.group(1))
        elif m := _BACKEND_RE.search(line):
            backend = m.group(1)
        elif m := _LABEL_RE.match(line):
            label = m.group(1)
    if perf is None:
        raise ValueError(f"{path}: no 'Performance:' line (incomplete run?)")
    return RunRecord(
        label=label or Path(path).stem,
        backend=backend or "unknown",
        n_ranks=ranks or 0,
        n_atoms=atoms or 0,
        ns_per_day=perf,
        ms_per_step=ms_per_step_to_ns_per_day(1.0) / perf if perf else 0.0,
    )


def collect_performance(log_dir: str | Path, pattern: str = "*.log") -> Table:
    """Parse every log in a directory into a Fig. 3/5-style table."""
    log_dir = Path(log_dir)
    tbl = Table(
        columns=("label", "backend", "ranks", "atoms", "ns_per_day", "ms_per_step"),
        title=f"parsed runs from {log_dir}",
    )
    for path in sorted(log_dir.glob(pattern)):
        rec = parse_log(path)
        tbl.add_row(
            rec.label, rec.backend, rec.n_ranks, rec.n_atoms,
            rec.ns_per_day, rec.ms_per_step,
        )
    return tbl


def log_simulated_sweep(
    out_dir: str | Path,
    sizes: list[int],
    rank_counts: list[int],
    machine,
    backends: tuple[str, ...] = ("mpi", "nvshmem"),
) -> list[Path]:
    """Run the timing model over a sweep and write one log per run —
    the directory then looks like the artifact's mdrun_logs/ trees."""
    from repro.md.grappa import grappa_label
    from repro.perf.model import simulate_step
    from repro.perf.workload import grappa_workload

    out = []
    for n_atoms in sizes:
        for ranks in rank_counts:
            try:
                wl = grappa_workload(n_atoms, ranks, machine)
            except ValueError:
                continue
            for backend in backends:
                _, t = simulate_step(wl, machine, backend=backend)
                label = f"{grappa_label(n_atoms)}_{ranks}r_{backend}"
                out.append(
                    write_log(
                        Path(out_dir) / f"{label}.log",
                        label=label,
                        backend=backend,
                        n_ranks=ranks,
                        n_atoms=n_atoms,
                        time_per_step_us=t.time_per_step,
                        grid=wl.grid,
                    )
                )
    return out
