"""Regeneration of every table/figure in the paper's evaluation (Sec. 6).

Each ``figN_*`` function sweeps the same workloads the paper measured and
returns a table with the same columns the figure plots.  Absolute numbers
come from the calibrated timing model; the *shapes* (who wins, by what
factor, where crossovers fall) are the reproduction targets — see
EXPERIMENTS.md for the side-by-side against the paper's published values.
"""

from __future__ import annotations

from repro.md.grappa import GRAPPA_SIZES
from repro.perf.machines import DGX_H100, EOS, GB200_NVL72, Machine
from repro.perf.model import simulate_step
from repro.perf.workload import grappa_workload
from repro.util.tables import Table
from repro.util.units import ms_per_step_to_ns_per_day

BACKENDS = ("mpi", "nvshmem")


def _perf(n_atoms: int, n_ranks: int, machine: Machine, backend: str, **kw):
    wl = grappa_workload(n_atoms, n_ranks, machine)
    _, t = simulate_step(wl, machine, backend=backend, **kw)
    return wl, t


def _nsday(t) -> float:
    return ms_per_step_to_ns_per_day(t.time_per_step * 1e-3)


# -- Fig. 3: intra-node MPI vs NVSHMEM on 4/8 GPUs ------------------------------


def fig3_intranode(sizes=("45k", "90k", "180k", "360k"), gpu_counts=(4, 8)) -> Table:
    """Intra-node strong scaling on a DGX H100 (ns/day and ms/step)."""
    tbl = Table(
        columns=("system", "gpus", "backend", "grid", "ns_per_day", "ms_per_step", "speedup_vs_mpi"),
        title="Fig. 3: intra-node MPI vs NVSHMEM (DGX H100)",
    )
    for size in sizes:
        n_atoms = GRAPPA_SIZES[size]
        for gpus in gpu_counts:
            res = {}
            for be in BACKENDS:
                wl, t = _perf(n_atoms, gpus, DGX_H100, be)
                res[be] = (wl, t)
            mpi_nd = _nsday(res["mpi"][1])
            for be in BACKENDS:
                wl, t = res[be]
                tbl.add_row(
                    size,
                    gpus,
                    be,
                    "x".join(map(str, wl.grid)),
                    _nsday(t),
                    t.time_per_step * 1e-3,
                    _nsday(t) / mpi_nd,
                )
    return tbl


# -- Fig. 4: GB200 NVL72 multi-node NVLink scaling ----------------------------------


def fig4_mnnvl(sizes=("720k", "1440k", "2880k"), node_counts=(1, 2, 4, 8)) -> Table:
    """NVSHMEM strong scaling on the GB200 NVL72 (ns/day + efficiency)."""
    tbl = Table(
        columns=("system", "nodes", "gpus", "grid", "ns_per_day", "ms_per_step", "efficiency"),
        title="Fig. 4: NVSHMEM strong scaling on GB200 NVL72 (MNNVL)",
    )
    for size in sizes:
        n_atoms = GRAPPA_SIZES[size]
        base = None
        for nodes in node_counts:
            gpus = nodes * GB200_NVL72.gpus_per_node
            wl, t = _perf(n_atoms, gpus, GB200_NVL72, "nvshmem")
            nd = _nsday(t)
            if base is None:
                base = (nodes, nd)
            eff = nd / (base[1] * nodes / base[0])
            tbl.add_row(size, nodes, gpus, "x".join(map(str, wl.grid)), nd, t.time_per_step * 1e-3, eff)
    return tbl


# -- Fig. 5: Eos multi-node MPI vs NVSHMEM ------------------------------------------

#: Node counts per system size (4 GPUs/node), matching the paper's ranges.
FIG5_NODE_COUNTS = {
    "720k": (2, 4, 8),
    "1440k": (2, 4, 8, 16),
    "5760k": (4, 8, 16, 32, 64, 128),
    "23040k": (2, 4, 16, 64, 144, 288),
}


def fig5_multinode(node_counts: dict | None = None) -> Table:
    """Multi-node strong scaling on Eos (NVLink + NDR InfiniBand)."""
    node_counts = node_counts or FIG5_NODE_COUNTS
    tbl = Table(
        columns=(
            "system", "nodes", "gpus", "backend", "grid",
            "ns_per_day", "ms_per_step", "efficiency", "speedup_vs_mpi",
        ),
        title="Fig. 5: multi-node MPI vs NVSHMEM strong scaling (Eos)",
    )
    for size, nodes_list in node_counts.items():
        n_atoms = GRAPPA_SIZES[size]
        base: dict[str, tuple[int, float]] = {}
        for nodes in nodes_list:
            gpus = nodes * EOS.gpus_per_node
            res = {}
            for be in BACKENDS:
                wl, t = _perf(n_atoms, gpus, EOS, be)
                res[be] = (wl, t)
            mpi_nd = _nsday(res["mpi"][1])
            for be in BACKENDS:
                wl, t = res[be]
                nd = _nsday(t)
                if be not in base:
                    base[be] = (nodes, nd)
                eff = nd / (base[be][1] * nodes / base[be][0])
                tbl.add_row(
                    size, nodes, gpus, be, "x".join(map(str, wl.grid)),
                    nd, t.time_per_step * 1e-3, eff, nd / mpi_nd,
                )
    return tbl


# -- Figs. 6-8: device-side timing analysis -------------------------------------------


def _timing_table(title: str, cases, machine: Machine) -> Table:
    tbl = Table(
        columns=(
            "system", "ranks", "atoms_per_gpu", "backend", "grid",
            "local_us", "nonlocal_us", "non_overlap_us", "step_us",
        ),
        title=title,
    )
    for size, ranks in cases:
        n_atoms = GRAPPA_SIZES[size]
        for be in BACKENDS:
            wl, t = _perf(n_atoms, ranks, machine, be)
            tbl.add_row(
                size, ranks, round(n_atoms / ranks), be, "x".join(map(str, wl.grid)),
                t.local_work, t.nonlocal_work, t.non_overlap, t.time_per_step,
            )
    return tbl


def fig6_device_timings_intranode() -> Table:
    """Fig. 6: device timings, 4 ranks intra-node (11.25k/45k/90k atoms/GPU)."""
    return _timing_table(
        "Fig. 6: device-side timings, intra-node 4 ranks (NVLink)",
        [("45k", 4), ("180k", 4), ("360k", 4)],
        DGX_H100,
    )


def fig7_device_timings_11k() -> Table:
    """Fig. 7: device timings at 11.25k atoms/GPU on 8/16/32 ranks (1D/2D/3D)."""
    return _timing_table(
        "Fig. 7: device-side timings, multi-node, 11.25k atoms/GPU",
        [("90k", 8), ("180k", 16), ("360k", 32)],
        EOS,
    )


def fig8_device_timings_90k() -> Table:
    """Fig. 8: device timings at 90k atoms/GPU on 8/16/32 ranks (1D/2D/3D)."""
    return _timing_table(
        "Fig. 8: device-side timings, multi-node, 90k atoms/GPU",
        [("720k", 8), ("1440k", 16), ("2880k", 32)],
        EOS,
    )


# -- Ablations (design choices called out in Sec. 5) -------------------------------------


def _ablation_rows(tbl: Table, label: str, n_atoms: int, ranks: int, machine: Machine, **variants):
    for name, kw in variants.items():
        wl = grappa_workload(n_atoms, ranks, machine)
        _, t = simulate_step(wl, machine, backend="nvshmem", **kw)
        tbl.add_row(label, name, t.nonlocal_work, t.time_per_step, _nsday(t))


def ablation_fused_pulses() -> Table:
    """ABL-FUSE: fused concurrent pulses vs the serialized baseline."""
    tbl = Table(
        columns=("case", "variant", "nonlocal_us", "step_us", "ns_per_day"),
        title="ABL-FUSE: fused vs serialized pulses (NVSHMEM)",
    )
    for size, ranks, machine in [("180k", 16, EOS), ("360k", 32, EOS), ("720k", 32, EOS)]:
        _ablation_rows(
            tbl, f"{size}/{ranks}r", GRAPPA_SIZES[size], ranks, machine,
            fused=dict(fused=True), serialized=dict(fused=False),
        )
    return tbl


def ablation_dep_partitioning() -> Table:
    """ABL-DEP: depOffset independent/dependent split on vs off."""
    tbl = Table(
        columns=("case", "variant", "nonlocal_us", "step_us", "ns_per_day"),
        title="ABL-DEP: dependency partitioning (depOffset split)",
    )
    for size, ranks, machine in [("180k", 16, EOS), ("360k", 32, EOS)]:
        _ablation_rows(
            tbl, f"{size}/{ranks}r", GRAPPA_SIZES[size], ranks, machine,
            split=dict(dep_partitioning=True), all_dependent=dict(dep_partitioning=False),
        )
    return tbl


def ablation_tma() -> Table:
    """ABL-TMA: pipelined TMA stores vs staged copies on NVLink."""
    tbl = Table(
        columns=("case", "variant", "nonlocal_us", "step_us", "ns_per_day"),
        title="ABL-TMA: TMA pipelined stores vs staged NVLink copies",
    )
    for size, gpus in [("45k", 4), ("180k", 8)]:
        _ablation_rows(
            tbl, f"{size}/{gpus}g", GRAPPA_SIZES[size], gpus, DGX_H100,
            tma=dict(tma=True), staged=dict(tma=False),
        )
    return tbl


def ablation_prune() -> Table:
    """ABL-PRUNE: Sec. 5.4 prune-stream optimization (both backends)."""
    tbl = Table(
        columns=("case", "backend", "variant", "step_us", "ns_per_day", "gain_pct"),
        title="ABL-PRUNE: prune on dedicated low-priority stream (Sec. 5.4)",
    )
    for size, gpus in [("45k", 4), ("180k", 8)]:
        for be in BACKENDS:
            wl = grappa_workload(GRAPPA_SIZES[size], gpus, DGX_H100)
            times = {}
            for opt in (True, False):
                _, t = simulate_step(wl, DGX_H100, backend=be, prune_opt=opt)
                times[opt] = t.time_per_step
            gain = (times[False] - times[True]) / times[False] * 100.0
            for opt in (False, True):
                tbl.add_row(
                    f"{size}/{gpus}g", be, "optimized" if opt else "legacy",
                    times[opt],
                    ms_per_step_to_ns_per_day(times[opt] * 1e-3),
                    gain if opt else 0.0,
                )
    return tbl


def ablation_cuda_graph() -> Table:
    """ABL-GRAPH: CUDA-graph capture of NVSHMEM steps (Sec. 5.3)."""
    tbl = Table(
        columns=("case", "variant", "step_us", "ns_per_day", "gain_pct"),
        title="ABL-GRAPH: CUDA-graph capture of the NVSHMEM step",
    )
    for size, ranks, machine in [("45k", 8, DGX_H100), ("90k", 32, EOS), ("2880k", 32, EOS)]:
        wl = grappa_workload(GRAPPA_SIZES[size], ranks, machine)
        times = {}
        for graph in (False, True):
            _, t = simulate_step(wl, machine, backend="nvshmem", cuda_graph=graph)
            times[graph] = t.time_per_step
        gain = (times[False] - times[True]) / times[False] * 100.0
        for graph in (False, True):
            tbl.add_row(
                f"{size}/{ranks}r", "graph" if graph else "stream",
                times[graph],
                ms_per_step_to_ns_per_day(times[graph] * 1e-3),
                gain if graph else 0.0,
            )
    return tbl


def _executed_slab_imbalance(dlb: str) -> float:
    """Pair-count imbalance fraction of a real executed slab DD run.

    A short inhomogeneous (slab) run on a 1x1x4 grid, serial executor:
    the per-rank pair counts after the final neighbour search are a pure
    function of the trajectory, so the returned fraction is deterministic
    — safe for the committed-CSV drift check, unlike wall-clock numbers.
    With ``dlb="pairs"`` the run resizes its DD cells between searches
    and the fraction drops; with ``"off"`` the uniform grid keeps the
    dense slab concentrated on the middle ranks.
    """
    import numpy as np

    from repro.dd import DDGrid, DDSimulator
    from repro.md import default_forcefield, make_system

    ff = default_forcefield(cutoff=0.65)
    system = make_system("slab-1400", seed=3, ff=ff, dtype=np.float64)
    with DDSimulator(
        system, ff, grid=DDGrid((1, 1, 4)), nstlist=2, buffer=0.12,
        max_pulses=2, dlb=dlb,
    ) as sim:
        sim.run(9)
        pairs = np.array(
            [w.n_pairs_local + w.n_pairs_nonlocal for w in sim.workloads],
            dtype=np.float64,
        )
    return float(pairs.max() / pairs.mean() - 1.0)


def ablation_imbalance() -> Table:
    """ABL-IMB: load imbalance — GPU-resident spin vs CPU resync (Sec. 7).

    The paper: NVSHMEM's waiting block groups burn SM time when PEs run
    imbalanced; their workaround resynchronizes PEs on the CPU, trading the
    fully GPU-resident schedule for less resource competition.

    The synthetic sweep (0/5/15% lateness) is joined by *executed* rows:
    the pair-count imbalance a slab system actually produces on a real DD
    run (:func:`_executed_slab_imbalance`), with and without dynamic load
    balancing, plugged into the same model — what DLB buys end to end.
    """
    tbl = Table(
        columns=("case", "imbalance", "sync", "step_us", "ns_per_day"),
        title="ABL-IMB: imbalance handling, GPU-resident spin vs CPU resync",
    )
    for size, ranks in [("360k", 32), ("2880k", 32)]:
        wl = grappa_workload(GRAPPA_SIZES[size], ranks, EOS)
        for imb in (0.0, 0.05, 0.15):
            for mode in ("gpu", "cpu"):
                _, t = simulate_step(
                    wl, EOS, backend="nvshmem", imbalance=imb, imbalance_sync=mode
                )
                tbl.add_row(
                    f"{size}/{ranks}r", imb, mode, t.time_per_step,
                    ms_per_step_to_ns_per_day(t.time_per_step * 1e-3),
                )
    wl = grappa_workload(GRAPPA_SIZES["2880k"], 32, EOS)
    for dlb in ("off", "pairs"):
        imb = round(_executed_slab_imbalance(dlb), 3)
        for mode in ("gpu", "cpu"):
            _, t = simulate_step(
                wl, EOS, backend="nvshmem", imbalance=imb, imbalance_sync=mode
            )
            tbl.add_row(
                f"slab-1400/4r/dlb-{dlb} (executed)", imb, mode,
                t.time_per_step,
                ms_per_step_to_ns_per_day(t.time_per_step * 1e-3),
            )
    return tbl


def intranode_three_way() -> Table:
    """Extension: MPI vs thread-MPI vs NVSHMEM intra-node (the artifact's
    mpi_tmpi_nvshmem comparison).  Thread-MPI shares NVSHMEM's launch-hiding
    but keeps per-pulse copy-engine transfers and no SM sharing."""
    tbl = Table(
        columns=("system", "gpus", "backend", "ns_per_day", "ms_per_step"),
        title="EXT: intra-node three-way comparison (DGX H100)",
    )
    for size in ("45k", "90k", "180k", "360k"):
        for gpus in (4, 8):
            for be in ("mpi", "threadmpi", "nvshmem"):
                wl, t = _perf(GRAPPA_SIZES[size], gpus, DGX_H100, be)
                tbl.add_row(size, gpus, be, _nsday(t), t.time_per_step * 1e-3)
    return tbl


def ext_pme_projection() -> Table:
    """EXT-PME: projected benefit of GPU-initiated PP<->PME communication.

    The paper's Sec. 7 future work, quantified with our model: add the PME
    rank-specialization arm (coordinates out after integration, long-range
    forces back before reduction) under today's CPU-synchronized MPI path vs
    the projected GPU-initiated path.  Not a paper figure — a projection.
    """
    from repro.sched.pme_comm import PmeWork

    tbl = Table(
        columns=("case", "backend", "rf_step_us", "pme_step_us", "pme_exposure_us"),
        title="EXT-PME: projected PP<->PME communication redesign (Sec. 7)",
    )
    for size, ranks in [("720k", 32), ("1440k", 64), ("5760k", 128)]:
        n_atoms = GRAPPA_SIZES[size]
        wl = grappa_workload(n_atoms, ranks, EOS)
        pme = PmeWork.for_system(n_atoms, n_pp=ranks, n_pme=max(1, ranks // 4), nvlink=False)
        for be in BACKENDS:
            _, base = simulate_step(wl, EOS, backend=be)
            _, with_pme = simulate_step(wl, EOS, backend=be, pme=pme)
            tbl.add_row(
                f"{size}/{ranks}r", be, base.time_per_step, with_pme.time_per_step,
                with_pme.time_per_step - base.time_per_step,
            )
    return tbl


def ablation_pinning() -> Table:
    """ABL-PIN: NVSHMEM proxy-thread affinity (Sec. 5.5, up to ~50x)."""
    tbl = Table(
        columns=("case", "pinning", "step_us", "ns_per_day", "slowdown"),
        title="ABL-PIN: proxy-thread affinity (multi-node NVSHMEM)",
    )
    for size, nodes in [("720k", 8), ("1440k", 16)]:
        wl = grappa_workload(GRAPPA_SIZES[size], nodes * EOS.gpus_per_node, EOS)
        base = None
        for mode in ("rank-pinning", "reserve-thread", "busy-core"):
            _, t = simulate_step(wl, EOS, backend="nvshmem", pinning=mode)
            if base is None:
                base = t.time_per_step
            tbl.add_row(
                f"{size}/{nodes}n", mode, t.time_per_step,
                ms_per_step_to_ns_per_day(t.time_per_step * 1e-3),
                t.time_per_step / base,
            )
    return tbl


def ablation_halo_trim() -> Table:
    """ABL-VOL: slab selection vs corner-distance trim (communication volume)."""
    from repro.dd.volumes import analytic_halo_volumes
    from repro.md.grappa import GRAPPA_DENSITY, grappa_box_length
    from repro.perf.workload import GRAPPA_BUFFER, GRAPPA_CUTOFF, paper_grid

    import numpy as np

    tbl = Table(
        columns=("case", "grid", "variant", "halo_atoms", "dependent_atoms", "saving_pct"),
        title="ABL-VOL: slab vs corner-distance trimmed halo volume",
    )
    r_comm = GRAPPA_CUTOFF + GRAPPA_BUFFER
    for size, ranks in [("180k", 16), ("360k", 32), ("2880k", 32)]:
        n_atoms = GRAPPA_SIZES[size]
        box = np.full(3, grappa_box_length(n_atoms))
        grid = paper_grid(ranks, box, r_comm)
        vols = {
            trim: analytic_halo_volumes(box, grid.shape, r_comm, GRAPPA_DENSITY, trim)
            for trim in (False, True)
        }
        for trim in (False, True):
            v = vols[trim]
            saving = (1.0 - v["halo_atoms"] / vols[False]["halo_atoms"]) * 100.0
            tbl.add_row(
                f"{size}/{ranks}r",
                "x".join(map(str, grid.shape)),
                "trimmed" if trim else "slab",
                v["halo_atoms"],
                v["dependent_atoms"],
                saving,
            )
    return tbl
