"""Analysis: figure/table generation from the timing model.

One function per paper figure (Figs. 3-8) plus the ablation studies; each
returns a :class:`~repro.util.tables.Table` with the same rows/series the
paper plots, ready for ASCII rendering or CSV export.
"""

from repro.analysis.report import (
    ablation_cuda_graph,
    ablation_dep_partitioning,
    ablation_fused_pulses,
    ablation_halo_trim,
    ablation_imbalance,
    ablation_pinning,
    ablation_prune,
    ablation_tma,
    fig3_intranode,
    fig4_mnnvl,
    fig5_multinode,
    fig6_device_timings_intranode,
    fig7_device_timings_11k,
    fig8_device_timings_90k,
    ext_pme_projection,
    intranode_three_way,
)

__all__ = [
    "ablation_cuda_graph",
    "ablation_dep_partitioning",
    "ablation_fused_pulses",
    "ablation_halo_trim",
    "ablation_imbalance",
    "ablation_pinning",
    "ablation_prune",
    "ablation_tma",
    "fig3_intranode",
    "fig4_mnnvl",
    "fig5_multinode",
    "fig6_device_timings_intranode",
    "fig7_device_timings_11k",
    "ext_pme_projection",
    "fig8_device_timings_90k",
    "intranode_three_way",
]
