"""DD grid factorization and rank <-> cell-coordinate mapping.

GROMACS chooses the decomposition grid by minimizing estimated communication
cost subject to the constraint that domains stay wide enough for the
requested number of pulses per dimension.  We reproduce the same selection:
enumerate all factorizations of the rank count and pick the one with the
smallest communicated halo volume (ties broken toward decomposing z first,
matching GROMACS' z -> y -> x communication order).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

#: Communication phase order: z first, then y, then x (paper Sec. 2.2).
PHASE_DIMS: tuple[int, ...] = (2, 1, 0)


def _factor_triples(n: int) -> list[tuple[int, int, int]]:
    """All ordered triples (nx, ny, nz) with nx*ny*nz == n."""
    triples = []
    for nx in range(1, n + 1):
        if n % nx:
            continue
        rem = n // nx
        for ny in range(1, rem + 1):
            if rem % ny:
                continue
            triples.append((nx, ny, rem // ny))
    return triples


@dataclass(frozen=True)
class DDGrid:
    """An (nx, ny, nz) decomposition grid over an orthorhombic box."""

    shape: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or any(s < 1 for s in self.shape):
            raise ValueError(f"grid shape must be 3 positive ints, got {self.shape}")

    @property
    def n_ranks(self) -> int:
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def ndim(self) -> int:
        """Number of decomposed dimensions (the paper's 1D/2D/3D DD)."""
        return sum(1 for s in self.shape if s > 1)

    def decomposed_dims(self) -> list[int]:
        """Dimensions with more than one domain, in phase (z, y, x) order."""
        return [d for d in PHASE_DIMS if self.shape[d] > 1]

    def rank_of_coords(self, coords: tuple[int, int, int]) -> int:
        nx, ny, nz = self.shape
        cx, cy, cz = (c % s for c, s in zip(coords, self.shape))
        return (cz * ny + cy) * nx + cx

    def coords_of_rank(self, rank: int) -> tuple[int, int, int]:
        nx, ny, nz = self.shape
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range for grid {self.shape}")
        cz, rem = divmod(rank, ny * nx)
        cy, cx = divmod(rem, nx)
        return (cx, cy, cz)

    def neighbor_rank(self, rank: int, dim: int, step: int) -> int:
        """Rank ``step`` cells away along ``dim`` (periodic)."""
        coords = list(self.coords_of_rank(rank))
        coords[dim] = (coords[dim] + step) % self.shape[dim]
        return self.rank_of_coords(tuple(coords))

    def all_ranks(self) -> range:
        return range(self.n_ranks)


def halo_volume_estimate(shape: tuple[int, int, int], box: np.ndarray, r_comm: float) -> float:
    """Estimated per-rank communicated halo volume for a candidate grid.

    Sums the staged zone volumes of the eighth-shell scheme: for decomposed
    dimensions with domain extents (ax, ay, az) and halo width rc, the
    received halo volume is the `+octant` shell, e.g. for a 3D decomposition
    ``(a+rc)^3 - a^3`` scaled to the actual extents.
    """
    box = np.asarray(box, dtype=np.float64)
    ext = box / np.asarray(shape, dtype=np.float64)
    grown = np.where(np.asarray(shape) > 1, ext + r_comm, ext)
    return float(np.prod(grown) - np.prod(ext))


def choose_grid(
    n_ranks: int,
    box: np.ndarray,
    r_comm: float,
    max_pulses: int = 1,
) -> DDGrid:
    """Pick the factorization with minimal estimated halo volume.

    Grids whose domains would be thinner than ``r_comm / max_pulses`` along a
    decomposed dimension are rejected (they would need more pulses than
    allowed); if nothing qualifies a ValueError explains the limit, mirroring
    GROMACS' "too many ranks" diagnostics.
    """
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    box = np.asarray(box, dtype=np.float64)
    candidates = []
    for shape in _factor_triples(n_ranks):
        ext = box / np.asarray(shape, dtype=np.float64)
        ok = all(shape[d] == 1 or ext[d] * max_pulses >= r_comm for d in range(3))
        # Minimum-image validity for undecomposed (periodic) dims is checked
        # by the cell list; decomposed dims additionally need >= 2 domains'
        # worth of space beyond the halo to avoid self-communication.
        if not ok:
            continue
        cost = halo_volume_estimate(shape, box, r_comm)
        # Prefer decomposing z, then y, then x (matches GROMACS' ordering
        # preference for the staged communication).
        tie = (shape[0], shape[1])
        candidates.append((cost, tie, shape))
    if not candidates:
        raise ValueError(
            f"no valid DD grid for {n_ranks} ranks: domains would be thinner "
            f"than r_comm={r_comm} (box={box}, max_pulses={max_pulses})"
        )
    candidates.sort()
    return DDGrid(shape=candidates[0][2])
