"""Neutral-territory domain decomposition (DD) and halo exchange.

This package reimplements, from scratch, the GROMACS eighth-shell domain
decomposition the paper redesigns:

* :mod:`repro.dd.grid` — DD grid factorization and rank/coordinate mapping,
* :mod:`repro.dd.decomposition` — spatial domains and atom assignment,
* :mod:`repro.dd.pulse` — per-pulse metadata (``PulseData``), including the
  ``depOffset`` dependent/independent split of Algorithm 4,
* :mod:`repro.dd.halo` — the staged z -> y -> x halo *plan* builder with
  forwarding (atoms received in earlier phases join later sends),
* :mod:`repro.dd.exchange` — synchronous reference coordinate/force exchange,
* :mod:`repro.dd.engine` — the multi-rank MD engine wired to a communication
  backend,
* :mod:`repro.dd.volumes` — analytic halo-volume model for systems too large
  to instantiate.

The eighth-shell invariant: every within-cutoff atom pair is computed on
exactly one rank — the rank where both atoms are visible and the elementwise
minimum of their zone shifts is zero.
"""

from repro.dd.decomposition import DomainBounds, DomainDecomposition
from repro.dd.dlb import DlbController, resize_widths
from repro.dd.engine import DDSimulator, resolve_backend_executor
from repro.dd.exchange import (
    ClusterState,
    build_cluster,
    gather_forces,
    gather_positions,
    reference_coordinate_exchange,
    reference_force_exchange,
)
from repro.dd.grid import DDGrid, choose_grid
from repro.dd.halo import HaloExchangePlan, RankHaloPlan, build_halo_plan
from repro.dd.pulse import PulseData
from repro.dd.volumes import analytic_halo_volumes, analytic_pulse_sizes

__all__ = [
    "ClusterState",
    "DDGrid",
    "DDSimulator",
    "DlbController",
    "resize_widths",
    "DomainBounds",
    "DomainDecomposition",
    "HaloExchangePlan",
    "PulseData",
    "RankHaloPlan",
    "analytic_halo_volumes",
    "analytic_pulse_sizes",
    "build_cluster",
    "build_halo_plan",
    "choose_grid",
    "gather_forces",
    "gather_positions",
    "reference_coordinate_exchange",
    "reference_force_exchange",
    "resolve_backend_executor",
]
