"""Staged eighth-shell halo plan construction.

Builds, for every rank, the ordered pulse list of the GROMACS halo exchange:
z-phase, then y-phase, then x-phase, data moving toward the negative
direction in each decomposed dimension.  The key property reproduced from
the paper (Sec. 2.2 and 5.1):

* *forwarding* — each phase's send selection includes halo atoms received in
  earlier phases, which is what couples the pulses and creates the
  ``depOffset`` dependent/independent split the fused NVSHMEM kernels exploit;
* *zone shifts* — every local atom carries the integer count of boundaries it
  crossed per dimension; the pair-assignment rule ("elementwise min of zone
  shifts is zero") makes every within-cutoff pair computed on exactly one
  rank (neutral territory: possibly a rank owning neither atom).

Selection uses the slab criterion (coordinate within ``r_comm`` of the
sending boundary plane); ``trim_corners=True`` additionally applies the
Euclidean corner-distance trim (GROMACS' multi-body distance check), which
provably preserves correctness while cutting diagonal over-communication:
an atom forwarded with zone shifts S can only be needed by a pair partner
inside the receiving slab column, so sum of squared per-dimension excesses
over S bounded by r_comm^2 is necessary for any within-cutoff pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dd.decomposition import DomainDecomposition
from repro.dd.grid import PHASE_DIMS
from repro.dd.pulse import PulseData


@dataclass
class RankHaloPlan:
    """One rank's halo layout: home atoms first, pulse zones appended after."""

    rank: int
    n_home: int
    global_ids: np.ndarray  # (n_local,) local -> global atom index
    positions: np.ndarray  # (n_local, 3) build-time coordinates (shifted)
    zone_shift: np.ndarray  # (n_local, 3) int boundaries crossed per dim
    src_pulse: np.ndarray  # (n_local,) pulse id that delivered the atom (-1 home)
    pulses: list[PulseData] = field(default_factory=list)

    @property
    def n_local(self) -> int:
        return int(self.global_ids.size)

    @property
    def n_halo(self) -> int:
        return self.n_local - self.n_home

    def pulse(self, pulse_id: int) -> PulseData:
        return self.pulses[pulse_id]


@dataclass
class HaloExchangePlan:
    """The collective plan: one RankHaloPlan per rank plus pulse bookkeeping."""

    dd: DomainDecomposition
    r_comm: float
    ranks: list[RankHaloPlan]
    pulse_dims: list[int]  # dim of each global pulse id, in order

    @property
    def n_pulses(self) -> int:
        return len(self.pulse_dims)

    def total_sent(self) -> int:
        """Total entries communicated per coordinate exchange, all ranks."""
        return sum(p.send_size for r in self.ranks for p in r.pulses)

    def max_halo(self) -> int:
        return max(r.n_halo for r in self.ranks)


def build_halo_plan(
    dd: DomainDecomposition,
    positions: np.ndarray,
    home: list[np.ndarray] | None = None,
    trim_corners: bool = False,
) -> HaloExchangePlan:
    """Construct the staged halo plan for wrapped global ``positions``.

    Parameters
    ----------
    dd:
        The decomposition (grid + box + r_comm).
    positions:
        (N, 3) wrapped coordinates used for the selection geometry (the plan
        is rebuilt at every neighbour-search step, like GROMACS').
    home:
        Optional precomputed per-rank home index arrays.
    trim_corners:
        Apply the Euclidean corner-distance trim to forwarded entries.
    """
    positions = np.asarray(positions, dtype=np.float64)
    if home is None:
        home = dd.home_indices(positions)
    grid = dd.grid
    box = dd.box
    r_comm = dd.r_comm

    plans: list[RankHaloPlan] = []
    for rank in grid.all_ranks():
        ids = home[rank]
        plans.append(
            RankHaloPlan(
                rank=rank,
                n_home=int(ids.size),
                global_ids=ids.astype(np.int64),
                positions=positions[ids].copy(),
                zone_shift=np.zeros((ids.size, 3), dtype=np.int8),
                src_pulse=np.full(ids.size, -1, dtype=np.int32),
            )
        )

    pulse_dims: list[int] = []
    pulse_id = 0
    for dim in PHASE_DIMS:
        nd = grid.shape[dim]
        if nd == 1:
            continue
        # Multiple pulses when domains are thinner than r_comm (the paper's
        # second-neighbour case): pulse 0 selects from home + cross-dimension
        # halo; pulse k > 0 forwards only what arrived in pulse k-1 of the
        # same dimension that the next receiver still needs.
        for k in range(dd.npulses[dim]):
            selections: list[np.ndarray] = []
            for rank in grid.all_ranks():
                plan = plans[rank]
                lo_plane = dd.bounds_of_rank(rank).lo[dim]
                coords_d = plan.positions[:, dim]
                mask = coords_d < lo_plane + r_comm
                if k == 0:
                    # First hop: everything not yet moved along this dim.
                    mask &= plan.zone_shift[:, dim] == 0
                else:
                    # Later hops: only the previous same-dim pulse's cargo.
                    mask &= plan.src_pulse == pulse_id - 1
                if trim_corners:
                    mask &= _corner_trim_mask(plan, dd, rank, dim, lo_plane, r_comm)
                sel = np.nonzero(mask)[0]
                # Independent (home) entries first, dependent (forwarded) after.
                is_dep = plan.src_pulse[sel] >= 0
                sel = np.concatenate([sel[~is_dep], sel[is_dep]])
                selections.append(sel)

            # Deliver: rank sends to its -dim neighbour, receives from +dim.
            recv_payload: list[dict] = [None] * grid.n_ranks  # type: ignore[list-item]
            for rank in grid.all_ranks():
                plan = plans[rank]
                sel = selections[rank]
                send_rank = grid.neighbor_rank(rank, dim, -1)
                recv_rank = grid.neighbor_rank(rank, dim, +1)
                sender_coord = grid.coords_of_rank(rank)[dim]
                shift = np.zeros(3)
                if sender_coord == 0:
                    shift[dim] = box[dim]
                dep_offset = int(np.count_nonzero(plan.src_pulse[sel] < 0))
                depends_on = tuple(
                    sorted(set(int(p) for p in plan.src_pulse[sel] if p >= 0))
                )
                pdata = PulseData(
                    pulse_id=pulse_id,
                    dim=dim,
                    pulse_in_dim=k,
                    rank=rank,
                    send_rank=send_rank,
                    recv_rank=recv_rank,
                    index_map=sel,
                    dep_offset=dep_offset,
                    depends_on=depends_on,
                    coord_shift=shift,
                    atom_offset=0,  # set below on the receiving side
                    recv_size=0,
                )
                plan.pulses.append(pdata)
                recv_payload[send_rank] = {
                    "positions": plan.positions[sel] + shift,
                    "global_ids": plan.global_ids[sel],
                    "zone_shift": plan.zone_shift[sel].copy(),
                }

            for rank in grid.all_ranks():
                plan = plans[rank]
                payload = recv_payload[rank]
                pdata = plan.pulses[pulse_id]
                pdata.atom_offset = plan.n_local
                pdata.recv_size = int(payload["global_ids"].size)
                zs = payload["zone_shift"]
                zs[:, dim] += 1
                plan.positions = np.vstack([plan.positions, payload["positions"]])
                plan.global_ids = np.concatenate([plan.global_ids, payload["global_ids"]])
                plan.zone_shift = np.vstack([plan.zone_shift, zs])
                plan.src_pulse = np.concatenate(
                    [plan.src_pulse, np.full(pdata.recv_size, pulse_id, dtype=np.int32)]
                )

            pulse_dims.append(dim)
            pulse_id += 1

    return HaloExchangePlan(dd=dd, r_comm=r_comm, ranks=plans, pulse_dims=pulse_dims)


def _corner_trim_mask(
    plan: RankHaloPlan,
    dd: DomainDecomposition,
    rank: int,
    dim: int,
    lo_plane: float,
    r_comm: float,
) -> np.ndarray:
    """Euclidean corner-distance trim for forwarded entries.

    For an atom with zone shifts along dims S (after the prospective hop the
    current dim joins S), any within-cutoff pair partner on the receiving
    rank lies inside the receiver's slab in every dim of S (the pair rule
    forces the partner's shift to 0 there), so the per-dim excesses beyond
    the receiver-adjacent boundaries bound the pair distance from below:
    keep only entries with sum(excess^2) <= r_comm^2.  Home entries (no prior
    shifts) reduce to the plain slab criterion and are always kept here.
    """
    bounds = dd.bounds_of_rank(rank)
    n = plan.n_local
    d2 = np.maximum(plan.positions[:, dim] - lo_plane, 0.0) ** 2
    for k in range(3):
        if k == dim:
            continue
        shifted = plan.zone_shift[:, k] > 0
        if not np.any(shifted):
            continue
        excess = np.where(shifted, plan.positions[:, k] - bounds.hi[k], 0.0)
        d2 += np.maximum(excess, 0.0) ** 2
    return d2 <= r_comm * r_comm
