"""Spatial domains and home-atom assignment.

Domains default to uniform slabs of the orthorhombic box (the paper's
GPU-resident runs do not use dynamic load balancing — Sec. 2.2); each rank
owns the atoms whose wrapped coordinates fall inside its half-open box
``[lo, hi)``.

Dynamic load balancing (:mod:`repro.dd.dlb`) may install *non-uniform*
per-dimension cell boundaries via :meth:`DomainDecomposition.set_boundaries`
— a tensor-product grid, so one boundary plane spans the whole
perpendicular cross-section (GROMACS' fully staggered rows are not
modelled; see DESIGN.md §8).  Correctness is preserved by construction:
every width must stay at or above the **cutoff floor** ``r_comm /
npulses[d]``, which guarantees any ``npulses[d]`` consecutive cells still
span ``r_comm``, so the fixed per-dimension pulse counts keep delivering
every atom the eighth-shell zone rule needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dd.grid import DDGrid
from repro.md.system import wrap_positions


@dataclass(frozen=True)
class DomainBounds:
    """Half-open spatial bounds of one rank's domain."""

    lo: np.ndarray
    hi: np.ndarray

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside ``[lo, hi)``."""
        return np.all((positions >= self.lo) & (positions < self.hi), axis=1)

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo


@dataclass
class DomainDecomposition:
    """A DD grid bound to a concrete box and communication cutoff.

    ``max_pulses`` allows domains thinner than ``r_comm``: dimension ``d``
    then uses ``ceil(r_comm / extent_d)`` forwarding pulses, as GROMACS does
    for second-neighbour communication (paper Sec. 2.2 — "up to two pulses
    per dimension").  A pulse count must stay below the number of domains in
    its dimension (otherwise data would wrap back to its owner).

    ``dlb=True`` plans each decomposed dimension for the *minimum* width
    dynamic load balancing may shrink a cell to, exactly as GROMACS plans
    communication for the DLB cell-size limit rather than the current cell
    size: ``npulses[d]`` rises to the ``max_pulses`` cap so the cutoff
    floor drops to ``r_comm / max_pulses``.  Extra pulses over still-wide
    cells forward nothing (the selection geometry is distance-based), so
    uniform-grid trajectories are bit-identical either way — but the plan
    carries the extra (possibly empty) pulse stages, which is why the
    default stays ``False`` for DLB-off runs.
    """

    grid: DDGrid
    box: np.ndarray
    r_comm: float
    max_pulses: int = 1
    dlb: bool = False

    def __post_init__(self) -> None:
        self.box = np.asarray(self.box, dtype=np.float64)
        if self.box.shape != (3,) or np.any(self.box <= 0):
            raise ValueError(f"box must be 3 positive lengths, got {self.box}")
        if self.r_comm <= 0:
            raise ValueError(f"r_comm must be positive, got {self.r_comm}")
        if self.max_pulses < 1:
            raise ValueError(f"max_pulses must be >= 1, got {self.max_pulses}")
        shape = np.asarray(self.grid.shape, dtype=np.float64)
        ext = self.box / shape
        npulses = []
        for d in range(3):
            if self.grid.shape[d] == 1:
                npulses.append(0)
                continue
            need = int(np.ceil(self.r_comm / ext[d] - 1e-12))
            if need > self.max_pulses:
                raise ValueError(
                    f"domain extent {ext[d]:.3f} along dim {d} needs {need} "
                    f"pulses for r_comm={self.r_comm}, but max_pulses="
                    f"{self.max_pulses} (use a coarser grid or raise max_pulses)"
                )
            if need >= self.grid.shape[d]:
                raise ValueError(
                    f"dim {d}: {need} pulses over only {self.grid.shape[d]} "
                    f"domains would wrap halo data back to its owner"
                )
            if self.dlb:
                # Plan for the smallest cell DLB may create, not the
                # current (uniform) width: every pulse count the resizer
                # could ever need is staged from the start.
                need = max(need, min(self.max_pulses, self.grid.shape[d] - 1))
            npulses.append(need)
        self.domain_extent = ext
        #: Pulses per dimension (0 for undecomposed dimensions).
        self.npulses = tuple(npulses)
        #: Per-dim non-uniform cell edges (length shape[d]+1) or None for
        #: the uniform default.  Installed only via :meth:`set_boundaries`.
        self._boundaries: list[np.ndarray | None] = [None, None, None]

    # -- non-uniform boundaries (dynamic load balancing) ----------------------

    @property
    def is_uniform(self) -> bool:
        """True while every dimension still uses the uniform default."""
        return all(b is None for b in self._boundaries)

    def width_floor(self, d: int) -> float:
        """Hard minimum cell width along dim ``d`` (the cutoff floor).

        With ``npulses[d]`` forwarding pulses, halo coverage for arbitrary
        widths needs any ``npulses[d]`` *consecutive* cells to span
        ``r_comm`` — guaranteed iff every width is at least
        ``r_comm / npulses[d]``.  Undecomposed dims have no floor.
        """
        n = self.npulses[d]
        return self.r_comm / n if n else 0.0

    def boundaries(self, d: int) -> np.ndarray:
        """Current cell edges along dim ``d`` (length ``shape[d] + 1``)."""
        if self._boundaries[d] is not None:
            return self._boundaries[d].copy()
        edges = np.arange(self.grid.shape[d] + 1) * self.domain_extent[d]
        edges[-1] = self.box[d]
        return edges

    def cell_widths(self, d: int) -> np.ndarray:
        """Current cell widths along dim ``d`` (length ``shape[d]``)."""
        return np.diff(self.boundaries(d))

    def set_boundaries(self, d: int, edges: np.ndarray) -> None:
        """Install non-uniform cell edges along dim ``d``.

        Validates the invariants the halo machinery relies on — fixed
        endpoints, strict monotonicity, and the cutoff floor — and raises
        :class:`ValueError` on any violation, so a buggy resizer can never
        silently break eighth-shell coverage.  Callers (the DLB
        controller via the engine) must follow every accepted move with a
        full redistribution + pair-list rebuild.
        """
        edges = np.asarray(edges, dtype=np.float64).copy()
        n_cells = self.grid.shape[d]
        if n_cells == 1:
            raise ValueError(f"dim {d} is undecomposed; boundaries are fixed")
        if edges.shape != (n_cells + 1,):
            raise ValueError(
                f"dim {d} needs {n_cells + 1} edges, got shape {edges.shape}"
            )
        if edges[0] != 0.0 or abs(edges[-1] - self.box[d]) > 1e-9 * self.box[d]:
            raise ValueError(
                f"dim {d} edges must span [0, {self.box[d]}], got "
                f"[{edges[0]}, {edges[-1]}]"
            )
        edges[-1] = self.box[d]
        widths = np.diff(edges)
        if np.any(widths <= 0):
            raise ValueError(f"dim {d} edges must be strictly increasing: {edges}")
        floor = self.width_floor(d)
        # Tolerate only float round-off below the floor: anything more is
        # a resizer bug that would break halo coverage.
        if float(widths.min()) < floor * (1.0 - 1e-9):
            raise ValueError(
                f"dim {d}: min cell width {widths.min():.6f} violates the "
                f"cutoff floor {floor:.6f} (r_comm={self.r_comm} over "
                f"{self.npulses[d]} pulse(s))"
            )
        self._boundaries[d] = edges

    def bounds_of_rank(self, rank: int) -> DomainBounds:
        coords_i = np.asarray(self.grid.coords_of_rank(rank))
        if self.is_uniform:
            coords = coords_i.astype(np.float64)
            lo = coords * self.domain_extent
            hi = lo + self.domain_extent
            # Close the box edge exactly for the last domain along each dim
            # so wrapped coordinates equal to box-epsilon are always assigned.
            top = coords_i == np.asarray(self.grid.shape) - 1
            hi = np.where(top, self.box, hi)
            return DomainBounds(lo=lo, hi=hi)
        lo = np.empty(3, dtype=np.float64)
        hi = np.empty(3, dtype=np.float64)
        for d in range(3):
            edges = self._boundaries[d]
            if edges is None:
                lo[d] = coords_i[d] * self.domain_extent[d]
                hi[d] = (
                    self.box[d]
                    if coords_i[d] == self.grid.shape[d] - 1
                    else lo[d] + self.domain_extent[d]
                )
            else:
                lo[d] = edges[coords_i[d]]
                hi[d] = edges[coords_i[d] + 1]
        return DomainBounds(lo=lo, hi=hi)

    def assign_atoms(self, positions: np.ndarray) -> np.ndarray:
        """Home rank of every atom (positions are wrapped internally)."""
        wrapped = wrap_positions(np.asarray(positions, dtype=np.float64), self.box)
        if self.is_uniform:
            cell = np.floor(wrapped / self.domain_extent).astype(int)
            cell = np.minimum(cell, np.asarray(self.grid.shape) - 1)
        else:
            cell = np.empty(wrapped.shape, dtype=int)
            for d in range(3):
                edges = self._boundaries[d]
                if edges is None:
                    col = np.floor(
                        wrapped[:, d] / self.domain_extent[d]
                    ).astype(int)
                else:
                    col = np.searchsorted(edges, wrapped[:, d], side="right") - 1
                cell[:, d] = np.minimum(col, self.grid.shape[d] - 1)
        nx, ny, _nz = self.grid.shape
        return ((cell[:, 2] * ny + cell[:, 1]) * nx + cell[:, 0]).astype(np.int64)

    def home_indices(self, positions: np.ndarray) -> list[np.ndarray]:
        """Per-rank arrays of global atom indices (ascending within a rank)."""
        owners = self.assign_atoms(positions)
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        splits = np.searchsorted(sorted_owners, np.arange(1, self.grid.n_ranks))
        return [np.sort(part) for part in np.split(order, splits)]
