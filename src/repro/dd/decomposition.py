"""Spatial domains and home-atom assignment.

Domains are uniform slabs of the orthorhombic box (the paper's GPU-resident
runs do not use dynamic load balancing, so the staggered-grid case never
occurs — Sec. 2.2); each rank owns the atoms whose wrapped coordinates fall
inside its half-open box ``[lo, hi)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dd.grid import DDGrid
from repro.md.system import wrap_positions


@dataclass(frozen=True)
class DomainBounds:
    """Half-open spatial bounds of one rank's domain."""

    lo: np.ndarray
    hi: np.ndarray

    def contains(self, positions: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside ``[lo, hi)``."""
        return np.all((positions >= self.lo) & (positions < self.hi), axis=1)

    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo


@dataclass
class DomainDecomposition:
    """A DD grid bound to a concrete box and communication cutoff.

    ``max_pulses`` allows domains thinner than ``r_comm``: dimension ``d``
    then uses ``ceil(r_comm / extent_d)`` forwarding pulses, as GROMACS does
    for second-neighbour communication (paper Sec. 2.2 — "up to two pulses
    per dimension").  A pulse count must stay below the number of domains in
    its dimension (otherwise data would wrap back to its owner).
    """

    grid: DDGrid
    box: np.ndarray
    r_comm: float
    max_pulses: int = 1

    def __post_init__(self) -> None:
        self.box = np.asarray(self.box, dtype=np.float64)
        if self.box.shape != (3,) or np.any(self.box <= 0):
            raise ValueError(f"box must be 3 positive lengths, got {self.box}")
        if self.r_comm <= 0:
            raise ValueError(f"r_comm must be positive, got {self.r_comm}")
        if self.max_pulses < 1:
            raise ValueError(f"max_pulses must be >= 1, got {self.max_pulses}")
        shape = np.asarray(self.grid.shape, dtype=np.float64)
        ext = self.box / shape
        npulses = []
        for d in range(3):
            if self.grid.shape[d] == 1:
                npulses.append(0)
                continue
            need = int(np.ceil(self.r_comm / ext[d] - 1e-12))
            if need > self.max_pulses:
                raise ValueError(
                    f"domain extent {ext[d]:.3f} along dim {d} needs {need} "
                    f"pulses for r_comm={self.r_comm}, but max_pulses="
                    f"{self.max_pulses} (use a coarser grid or raise max_pulses)"
                )
            if need >= self.grid.shape[d]:
                raise ValueError(
                    f"dim {d}: {need} pulses over only {self.grid.shape[d]} "
                    f"domains would wrap halo data back to its owner"
                )
            npulses.append(need)
        self.domain_extent = ext
        #: Pulses per dimension (0 for undecomposed dimensions).
        self.npulses = tuple(npulses)

    def bounds_of_rank(self, rank: int) -> DomainBounds:
        coords = np.asarray(self.grid.coords_of_rank(rank), dtype=np.float64)
        lo = coords * self.domain_extent
        hi = lo + self.domain_extent
        # Close the box edge exactly for the last domain along each dim so
        # wrapped coordinates equal to box-epsilon are always assigned.
        top = np.asarray(self.grid.coords_of_rank(rank)) == np.asarray(self.grid.shape) - 1
        hi = np.where(top, self.box, hi)
        return DomainBounds(lo=lo, hi=hi)

    def assign_atoms(self, positions: np.ndarray) -> np.ndarray:
        """Home rank of every atom (positions are wrapped internally)."""
        wrapped = wrap_positions(np.asarray(positions, dtype=np.float64), self.box)
        cell = np.floor(wrapped / self.domain_extent).astype(int)
        cell = np.minimum(cell, np.asarray(self.grid.shape) - 1)
        nx, ny, _nz = self.grid.shape
        return ((cell[:, 2] * ny + cell[:, 1]) * nx + cell[:, 0]).astype(np.int64)

    def home_indices(self, positions: np.ndarray) -> list[np.ndarray]:
        """Per-rank arrays of global atom indices (ascending within a rank)."""
        owners = self.assign_atoms(positions)
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        splits = np.searchsorted(sorted_owners, np.arange(1, self.grid.n_ranks))
        return [np.sort(part) for part in np.split(order, splits)]
