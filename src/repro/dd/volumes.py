"""Analytic halo-volume and workload model.

The paper's benchmark systems go up to 23.04 million atoms; instantiating
them is unnecessary for the timing layer, which only needs communication
volumes and pair-kernel work per rank.  For the homogeneous grappa systems
these follow directly from geometry:

* a pulse along dimension ``d`` sends a slab of thickness ``r_comm``; later
  phases also forward previously received halo, growing the slab's
  cross-section by ``r_comm`` along every already-processed dimension
  (those forwarded contributions are the *dependent* part);
* with the corner-distance trim, the forwarded edge/corner contributions
  shrink from square cross-sections to quarter-cylinders (``pi/4``) and the
  3D corner to a sphere octant (``pi/6``).

Tests cross-validate this model against measured pulse sizes from the
functional DD on instantiable systems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dd.grid import PHASE_DIMS


@dataclass(frozen=True)
class PulseVolume:
    """Analytic communication volume of one pulse (per rank, in atoms)."""

    pulse_id: int
    dim: int
    send_size: float
    independent_size: float  # home-slab part, packable immediately

    @property
    def dependent_size(self) -> float:
        return self.send_size - self.independent_size


def analytic_pulse_sizes(
    box: np.ndarray,
    grid_shape: tuple[int, int, int],
    r_comm: float,
    density: float,
    trim_corners: bool = False,
) -> list[PulseVolume]:
    """Per-rank send sizes (atom counts) for every pulse in global order."""
    box = np.asarray(box, dtype=np.float64)
    ext = box / np.asarray(grid_shape, dtype=np.float64)
    pulses: list[PulseVolume] = []
    processed: list[int] = []
    pid = 0
    for dim in PHASE_DIMS:
        if grid_shape[dim] == 1:
            continue
        others = [d for d in range(3) if d != dim]
        home_cross = math.prod(ext[d] for d in others)
        home_vol = r_comm * home_cross
        if trim_corners:
            dep_vol = 0.0
            fwd = [d for d in others if d in processed]
            for d in fwd:
                rest = math.prod(ext[e] for e in others if e != d)
                dep_vol += (math.pi / 4.0) * r_comm**2 * rest
            if len(fwd) == 2:
                dep_vol += (math.pi / 6.0) * r_comm**3
        else:
            cross = math.prod(
                ext[d] + (r_comm if d in processed else 0.0) for d in others
            )
            dep_vol = r_comm * cross - home_vol
        pulses.append(
            PulseVolume(
                pulse_id=pid,
                dim=dim,
                send_size=density * (home_vol + dep_vol),
                independent_size=density * home_vol,
            )
        )
        processed.append(dim)
        pid += 1
    return pulses


def analytic_halo_volumes(
    box: np.ndarray,
    grid_shape: tuple[int, int, int],
    r_comm: float,
    density: float,
    trim_corners: bool = False,
) -> dict[str, float]:
    """Aggregate per-rank halo statistics (atom counts)."""
    pulses = analytic_pulse_sizes(box, grid_shape, r_comm, density, trim_corners)
    total = sum(p.send_size for p in pulses)
    dependent = sum(p.dependent_size for p in pulses)
    return {
        "n_pulses": float(len(pulses)),
        "halo_atoms": total,
        "dependent_atoms": dependent,
        "independent_atoms": total - dependent,
    }


def analytic_pair_counts(
    box: np.ndarray,
    grid_shape: tuple[int, int, int],
    cutoff: float,
    density: float,
) -> tuple[float, float]:
    """Estimated (local, non-local) pair counts per rank.

    Every within-cutoff pair is computed on exactly one rank, so a rank's
    fair share is ``V_domain * rho^2 * (2 pi / 3) rc^3``.  The *local* subset
    (both atoms home) is estimated with a per-dimension slab-overlap factor
    ``g(a) = max(0, 1 - 3 rc / (8 a))`` — the mean displacement component of
    a uniformly distributed within-cutoff pair is ``3 rc / 8`` — applied
    along decomposed dimensions only.  This is a model, not an identity;
    tests pin it against measured counts to ~15%.
    """
    box = np.asarray(box, dtype=np.float64)
    ext = box / np.asarray(grid_shape, dtype=np.float64)
    v_dom = float(np.prod(ext))
    total = v_dom * density**2 * (2.0 * math.pi / 3.0) * cutoff**3
    g = 1.0
    for d in range(3):
        if grid_shape[d] > 1:
            g *= max(0.0, 1.0 - 3.0 * cutoff / (8.0 * ext[d]))
    local = total * g
    return local, total - local
