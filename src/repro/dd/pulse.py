"""Per-pulse halo-exchange metadata (the paper's ``PulseData``, Algorithm 1).

One ``PulseData`` exists per rank per pulse.  Within a pulse every rank both
sends (its ``index_map`` selection, to ``send_rank``) and receives (the
``recv_size`` entries stored at ``atom_offset``, from ``recv_rank``) — the
per-dimension exchanges form rings.

The dependency split of Algorithm 4 lives here: ``index_map`` is ordered with
*independent* entries (home atoms, local index < n_home) first and
*dependent* entries (atoms received in earlier pulses of the same exchange,
which cannot be packed until those pulses complete) after ``dep_offset``.
``depends_on`` lists the exact earlier pulse ids feeding the dependent part,
matching the paper's ``firstDependentPulse`` chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class PulseData:
    """Metadata for one communication pulse on one rank."""

    pulse_id: int  # position in the global pulse order [z.., y.., x..]
    dim: int  # 0=x, 1=y, 2=z
    pulse_in_dim: int  # index of this pulse within its dimension
    rank: int
    send_rank: int  # peer this rank's selection is sent to (-dim neighbour)
    recv_rank: int  # peer whose selection this rank receives (+dim neighbour)
    index_map: np.ndarray  # local indices to pack, independent-first
    dep_offset: int  # count of independent entries in index_map
    depends_on: tuple[int, ...]  # earlier pulse ids the dependent part needs
    coord_shift: np.ndarray  # (3,) float shift applied when packing (PBC image)
    atom_offset: int  # local index where received entries are stored
    recv_size: int
    # Filled by the NVSHMEM backend when the peer is NVLink-reachable
    # (None models the InfiniBand staged path) — the paper's remoteCoordDst /
    # remoteForceSrc nvshmem_ptr() results.
    remote_coord_dst: object | None = field(default=None, repr=False)
    remote_force_src: object | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.index_map = np.asarray(self.index_map, dtype=np.int64)
        self.coord_shift = np.asarray(self.coord_shift, dtype=np.float64)
        if self.coord_shift.shape != (3,):
            raise ValueError("coord_shift must have shape (3,)")
        if not 0 <= self.dep_offset <= self.index_map.size:
            raise ValueError(
                f"dep_offset {self.dep_offset} outside [0, {self.index_map.size}]"
            )
        if self.recv_size < 0 or self.atom_offset < 0:
            raise ValueError("recv_size and atom_offset must be non-negative")
        if any(d >= self.pulse_id for d in self.depends_on):
            raise ValueError("pulses may only depend on earlier pulses")

    @property
    def send_size(self) -> int:
        return int(self.index_map.size)

    @property
    def independent_map(self) -> np.ndarray:
        """Entries that can be packed immediately (home atoms)."""
        return self.index_map[: self.dep_offset]

    @property
    def dependent_map(self) -> np.ndarray:
        """Entries waiting on earlier pulses' received data."""
        return self.index_map[self.dep_offset :]

    @property
    def first_dependent_pulse(self) -> int | None:
        """Earliest pulse id the dependent part waits on (None if none)."""
        return min(self.depends_on) if self.depends_on else None

    def send_bytes(self, per_entry: int = 12) -> int:
        """Bytes on the wire for this pulse (float3 coordinates by default)."""
        return self.send_size * per_entry
