"""The domain-decomposed MD engine.

Runs the same physics as :class:`repro.md.reference.ReferenceSimulator`, but
distributed over the ranks of a :class:`DomainDecomposition` with halo
exchange delegated to a pluggable communication backend (reference
serialized, MPI-style staged, or NVSHMEM-style fused — see
:mod:`repro.comm`) and per-rank work scheduled through a pluggable
:class:`~repro.par.base.RankExecutor` (serial, thread pool, or true-parallel
process pool over shared memory — see :mod:`repro.par`).  Trajectories must
match the serial reference to floating-point accumulation order, and must be
bit-identical across executors; the test suite enforces both.

The per-rank loops of the old engine (pair search, forces, integration) now
live in :mod:`repro.par.phases` as named phases the executor runs; the
engine's job is sequencing phases against halo exchanges and keeping the
parent and worker views of the cluster arrays coherent (see
``HaloBackend.mutates_*`` and ``RankExecutor.publish``).
"""

from __future__ import annotations

import warnings
from dataclasses import KW_ONLY, dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.dd.decomposition import DomainDecomposition
from repro.dd.exchange import ClusterState, build_cluster, gather_forces
from repro.dd.grid import DDGrid, choose_grid
from repro.md.forcefield import ForceField
from repro.md.integrator import LeapFrogIntegrator
from repro.md.nonbonded import NonbondedKernel
from repro.md.reference import StepEnergies
from repro.md.system import MDSystem
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER
from repro.par.phases import FIELDS, RankConfig, RankNsData

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids import cycles)
    from repro.comm.base import HaloBackend
    from repro.par.base import RankExecutor

#: ClusterState field -> executor/workspace field (see repro.par.phases.FIELDS).
_EXEC_FIELD = {f"local_{name}": name for name in FIELDS}


def resolve_backend_executor(
    backend: "HaloBackend | str | None" = None,
    executor: "RankExecutor | str | None" = None,
    *,
    backend_kwargs: dict | None = None,
    executor_kwargs: dict | None = None,
) -> "tuple[HaloBackend, RankExecutor]":
    """Resolve halo-backend and rank-executor registry names to instances.

    The single place registry names become objects: instances pass
    through untouched, ``None`` picks the defaults (``"reference"`` /
    ``"serial"``), and an unknown name raises one actionable
    :class:`ValueError` naming both registries — every entry point
    (engine, CLI, bench, harness, serve) routes through here so the
    error reads the same everywhere.
    """
    from repro.comm import backend_registry, make_backend
    from repro.par import executor_registry, make_executor

    if backend is None:
        backend = "reference"
    if isinstance(backend, str):
        if backend not in backend_registry:
            raise ValueError(
                f"unknown backend '{backend}': available backends are "
                f"{', '.join(sorted(backend_registry))}; available executors are "
                f"{', '.join(sorted(executor_registry))} (pass a registry name "
                f"or an instance)"
            )
        backend = make_backend(backend, **(backend_kwargs or {}))
    if executor is None:
        executor = "serial"
    if isinstance(executor, str):
        if executor not in executor_registry:
            raise ValueError(
                f"unknown executor '{executor}': available executors are "
                f"{', '.join(sorted(executor_registry))}; available backends are "
                f"{', '.join(sorted(backend_registry))} (pass a registry name "
                f"or an instance)"
            )
        executor = make_executor(executor, **(executor_kwargs or {}))
    return backend, executor


@dataclass
class RankWorkload:
    """Per-rank work statistics for one neighbour-search interval.

    These feed the performance model: local pairs drive the local non-bonded
    kernel, non-local pairs the non-local kernel, and the pulse sizes the
    communication volumes.
    """

    rank: int
    n_home: int
    n_halo: int
    n_pairs_local: int
    n_pairs_nonlocal: int
    pulse_send_sizes: list[int]
    #: Non-local pairs grouped by the latest pulse they depend on (the
    #: ``depOffset`` partition) — sums to ``n_pairs_nonlocal``.
    pulse_pair_counts: list[int] = field(default_factory=list)
    #: Standing pair-list footprint (blocks + tiles) on this rank, bytes.
    pairlist_bytes: int = 0
    #: Search-structure footprint (cell grid / cluster layouts), bytes.
    cells_bytes: int = 0
    #: Peak build working set on this rank: transient chunks + standing
    #: structures.  ``build_peak_bytes / (n_home + n_halo)`` is the
    #: bytes/atom number the CI scale job asserts a cap on.
    build_peak_bytes: int = 0


@dataclass
class DDSimulator:
    """Multi-rank MD driver over an in-process cluster.

    ``backend`` and ``executor`` accept either instances or registry names
    (``make_backend`` / ``make_executor`` strings such as ``"nvshmem"`` and
    ``"process"``); the tuning knobs are keyword-only so positional misuse
    fails loudly.
    """

    system: MDSystem
    ff: ForceField
    n_ranks: int = 0
    grid: DDGrid | None = None
    backend: HaloBackend | str | None = None
    executor: RankExecutor | str | None = None
    _: KW_ONLY
    nstlist: int = 20
    buffer: float = 0.1
    dt: float = 0.002
    trim_corners: bool = False
    max_pulses: int = 1
    #: "rf" (reaction field) or "pme" (erfc real space on the PP ranks +
    #: SPME reciprocal through a PP/PME rank-specialized session).
    coulomb: str = "rf"
    pme_grid: tuple[int, int, int] | None = None
    n_pme_ranks: int = 0
    #: Overlap the coordinate halo with the local force phase (the paper's
    #: comm–compute overlap).  ``False`` forces the strict schedule on
    #: every executor: local forces, full exchange, non-local forces.
    overlap_comm: bool = True
    #: Non-bonded kernel implementation (``repro.md.kernels`` registry
    #: name): "segment" (default flat path), "cluster" (M×N cluster-pair
    #: NumPy), or "cluster-numba" (compiled tiles; needs numba).
    kernel: str = "segment"
    #: Kernel compute precision: "float64" (default, bit-exact reference)
    #: or "float32" (the mixed-precision fast path).
    kernel_dtype: str = "float64"
    #: Per-rank transient working-set cap for pair-list builds (bytes);
    #: ``None`` keeps the tuned default chunking.  Capped builds are
    #: bit-identical to uncapped ones (chunk boundaries never change the
    #: produced list), so this is purely a memory/perf knob.
    max_build_bytes: int | None = None
    #: Dynamic load balancing: "off" (default; uniform cells, bit-exact
    #: legacy behaviour), "pairs" (deterministic — per-rank pair counts
    #: from the last neighbour search drive the resizer), or "measured"
    #: (per-rank wall-clock phase times; what production would use, but
    #: nondeterministic run to run).  Resizing happens only immediately
    #: before a neighbour search, so every boundary move is followed by
    #: full redistribution + list rebuilds by construction.
    dlb: str = "off"
    topology: "object | None" = None
    #: Optional hook replacing :func:`repro.dd.exchange.build_cluster` at
    #: neighbour search: called as ``cluster_factory(sim)`` and must return
    #: a fresh :class:`ClusterState` for the current positions.  The serve
    #: layer uses this to satisfy the step-0 build from its artifact cache.
    cluster_factory: "Callable[[DDSimulator], ClusterState] | None" = None
    step_count: int = 0
    energies: list[StepEnergies] = field(default_factory=list)

    def __post_init__(self) -> None:
        r_comm = self.ff.cutoff + self.buffer
        if self.grid is None:
            if self.n_ranks < 1:
                raise ValueError("provide either grid or a positive n_ranks")
            self.grid = choose_grid(
                self.n_ranks, self.system.box, r_comm, max_pulses=self.max_pulses
            )
        self.n_ranks = self.grid.n_ranks
        if self.dlb not in ("off", "measured", "pairs"):
            raise ValueError(
                f"unknown dlb mode '{self.dlb}': use 'off', 'measured' "
                f"(wall-clock per-rank timings), or 'pairs' (deterministic "
                f"pair-count loads)"
            )
        self.dd = DomainDecomposition(
            grid=self.grid, box=self.system.box, r_comm=r_comm,
            max_pulses=self.max_pulses, dlb=self.dlb != "off",
        )
        self.backend, _executor = resolve_backend_executor(self.backend, self.executor)
        self._pme_session = None
        if self.coulomb == "pme":
            from repro.md.reference import _default_pme_grid
            from repro.pme.decomposition import PmePpSession
            from repro.pme.spme import optimal_beta

            beta = optimal_beta(self.ff.cutoff)
            grid = self.pme_grid or _default_pme_grid(self.system.box)
            n_pme = self.n_pme_ranks or max(1, self.n_ranks // 4)
            self._pme_session = PmePpSession(
                n_pp=self.n_ranks,
                n_pme=n_pme,
                box=self.system.box,
                grid=grid,
                beta=beta,
                max_atoms_per_rank=int(2.0 * self.system.n_atoms / self.n_ranks) + 64,
            )
            self._kernel = NonbondedKernel(
                self.ff, coulomb="ewald", ewald_beta=beta,
                name=self.kernel, dtype=self.kernel_dtype,
            )
        elif self.coulomb == "rf":
            self._kernel = NonbondedKernel(
                self.ff, name=self.kernel, dtype=self.kernel_dtype
            )
        else:
            raise ValueError(f"unknown coulomb mode '{self.coulomb}' (use 'rf' or 'pme')")
        # Resolve the kernel implementation now so an unknown name or a
        # missing optional dependency (cluster-numba without numba) fails
        # at construction, not mid-run inside an executor worker.
        self._kernel.impl
        self._integrator = LeapFrogIntegrator(dt=self.dt)
        self._periodic = np.array([self.grid.shape[d] == 1 for d in range(3)])
        if self.dlb != "off":
            from repro.dd.dlb import DlbController

            self._dlb = DlbController(self.dd)
        else:
            self._dlb = None
        self.executor = _executor
        self.executor.configure(
            RankConfig(
                kernel=self._kernel,
                integrator=self._integrator,
                box=self.dd.box,
                periodic=self._periodic,
                r_comm=self.dd.r_comm,
                max_build_bytes=self.max_build_bytes,
                dlb=self.dlb,
            ),
            self.n_ranks,
        )
        self.cluster: ClusterState | None = None
        self._pair_stats: list[dict] = []
        self._ns_positions: np.ndarray | None = None
        self.workloads: list[RankWorkload] = []

    @property
    def dlb_adjustments(self) -> int:
        """Accepted DLB boundary moves so far (0 with DLB off)."""
        return 0 if self._dlb is None else self._dlb.adjustments

    # -- spec construction ----------------------------------------------------

    @classmethod
    def from_spec(
        cls,
        spec,
        *,
        system: MDSystem | None = None,
        ff: ForceField | None = None,
        grid: DDGrid | None = None,
        executor: "RankExecutor | str | None" = None,
        cluster_factory: "Callable[[DDSimulator], ClusterState] | None" = None,
    ) -> "DDSimulator":
        """Build a simulator from a :class:`repro.serve.SimulationSpec`.

        ``spec`` is duck-typed (any object with the spec's fields), so the
        engine keeps no import on the serve layer.  The optional keyword
        overrides let callers inject pre-built (possibly cached) pieces —
        a system template, a chosen grid, a cluster factory — without the
        spec losing its role as the single source of truth for the knobs.
        """
        from repro.dd.grid import DDGrid as _DDGrid
        from repro.md.forcefield import default_forcefield
        from repro.md.inhomogeneous import make_system

        if ff is None:
            ff = default_forcefield(cutoff=spec.cutoff)
        if system is None:
            system = make_system(
                spec.system, seed=spec.seed, ff=ff, dtype=np.float64
            )
        backend_kwargs: dict = {}
        if spec.backend == "nvshmem":
            backend_kwargs["seed"] = spec.seed
            if spec.pes_per_node:
                backend_kwargs["pes_per_node"] = spec.pes_per_node
        backend, executor = resolve_backend_executor(
            spec.backend, executor or spec.executor, backend_kwargs=backend_kwargs
        )
        if grid is None and spec.shape is not None:
            grid = _DDGrid(tuple(spec.shape))
        return cls(
            system,
            ff,
            n_ranks=spec.ranks,
            grid=grid,
            backend=backend,
            executor=executor,
            nstlist=spec.nstlist,
            buffer=spec.buffer,
            dt=spec.dt,
            trim_corners=spec.trim_corners,
            max_pulses=spec.max_pulses,
            coulomb=spec.coulomb,
            overlap_comm=spec.overlap_comm,
            kernel=getattr(spec, "kernel", "segment"),
            kernel_dtype=getattr(spec, "kernel_dtype", "float64"),
            max_build_bytes=getattr(spec, "max_build_bytes", None),
            dlb=getattr(spec, "dlb", "off"),
            cluster_factory=cluster_factory,
        )

    # -- executor coherence ---------------------------------------------------

    def _bind_executor(self) -> None:
        """Hand the fresh cluster arrays to the executor.

        Runs after ``backend.bind``: a backend that rebinds cluster arrays
        to internal buffers (``rebinds_cluster_arrays``) forces the
        executor into mirror mode; otherwise the executor may adopt the
        arrays into shared memory and return replacement views, which are
        installed so parent-side exchanges mutate worker-visible memory.
        """
        cluster = self.cluster
        fields = [
            {
                "pos": cluster.local_pos[r],
                "vel": cluster.local_vel[r],
                "forces": cluster.local_forces[r],
                "types": cluster.local_types[r],
                "charges": cluster.local_charges[r],
                "masses": cluster.local_masses[r],
            }
            for r in range(self.n_ranks)
        ]
        ns = [
            RankNsData(
                rank=r,
                n_home=rp.n_home,
                zone_shift=rp.zone_shift,
                bonded=self._bonded[r] if self._bonded else None,
                src_pulse=rp.src_pulse,
                n_pulses=cluster.plan.n_pulses,
            )
            for r, rp in enumerate(cluster.plan.ranks)
        ]
        adopt = not getattr(self.backend, "rebinds_cluster_arrays", False)
        views = self.executor.bind(fields, ns, adopt=adopt)
        if views is not None:
            for r, v in enumerate(views):
                cluster.local_pos[r] = v["pos"]
                cluster.local_vel[r] = v["vel"]
                cluster.local_forces[r] = v["forces"]
                cluster.local_types[r] = v["types"]
                cluster.local_charges[r] = v["charges"]
                cluster.local_masses[r] = v["masses"]

    def _publish(self, cluster_fields: tuple[str, ...]) -> None:
        """Push parent-side writes of the named ClusterState fields to workers."""
        self.executor.publish(tuple(_EXEC_FIELD[f] for f in cluster_fields))

    # -- neighbour search ---------------------------------------------------

    def neighbor_search(self) -> None:
        """Full redistribution: wrap, reassign atoms, rebuild plan and lists.

        Also rebinds the halo backend and the executor to the fresh cluster
        and runs the per-rank pair-search phase through the executor.
        """
        if self.cluster_factory is not None:
            self.cluster = self.cluster_factory(self)
        else:
            self.cluster = build_cluster(
                self.system, self.dd, trim_corners=self.trim_corners
            )
        self._assign_bonded()
        self.backend.bind(self.cluster)
        self._bind_executor()
        self._pair_stats = self.executor.run("pairs")
        self._ns_positions = self.system.positions.copy()
        self.workloads = []
        for r, plan in enumerate(self.cluster.plan.ranks):
            stats = self._pair_stats[r]
            self.workloads.append(
                RankWorkload(
                    rank=r,
                    n_home=plan.n_home,
                    n_halo=plan.n_halo,
                    n_pairs_local=stats["n_local"],
                    n_pairs_nonlocal=stats["n_nonlocal"],
                    pulse_send_sizes=[p.send_size for p in plan.pulses],
                    pulse_pair_counts=stats["pulse_pairs"],
                    pairlist_bytes=stats.get("pairlist_bytes", 0),
                    cells_bytes=stats.get("cells_bytes", 0),
                    build_peak_bytes=stats.get("build_peak_bytes", 0),
                )
            )
        METRICS.counter("dd.ns_builds").inc()
        METRICS.gauge("dd.pairs_local").set(sum(w.n_pairs_local for w in self.workloads))
        METRICS.gauge("dd.pairs_nonlocal").set(
            sum(w.n_pairs_nonlocal for w in self.workloads)
        )
        METRICS.gauge("dd.halo_atoms").set(sum(w.n_halo for w in self.workloads))
        # Build-memory gauges: totals across ranks for the standing
        # structures, per-rank max for the peaks (ranks build
        # concurrently only on multi-core hosts; the per-rank peak is the
        # number the bytes/atom budget constrains either way).
        METRICS.gauge("md.pairlist.bytes").set(
            sum(w.pairlist_bytes for w in self.workloads)
        )
        METRICS.gauge("md.cells.bytes").set(
            sum(w.cells_bytes for w in self.workloads)
        )
        METRICS.gauge("md.build.peak_bytes").set(
            max((w.build_peak_bytes for w in self.workloads), default=0)
        )
        METRICS.gauge("md.build.peak_bytes_per_atom").set(
            max(
                (
                    w.build_peak_bytes / max(w.n_home + w.n_halo, 1)
                    for w in self.workloads
                ),
                default=0.0,
            )
        )
        for w in self.workloads:
            for size in w.pulse_send_sizes:
                METRICS.histogram("dd.pulse_send_atoms").observe(size)

    def _assign_bonded(self) -> None:
        """Rank-local bonded lists by the zone rule (exactly-once assignment).

        A bonded interaction is computed on the rank where every member is
        visible and the elementwise minimum of the members' zone shifts is
        zero — the same rule as non-bonded pairs, valid because all members
        lie within the communication cutoff of each other.
        """
        self._bonded = []
        if self.topology is None:
            return
        top = self.topology
        n = self.system.n_atoms
        for rp in self.cluster.plan.ranks:
            g2l = np.full(n, -1, dtype=np.int64)
            g2l[rp.global_ids] = np.arange(rp.n_local)
            zs = rp.zone_shift

            def claim(members):
                loc = g2l[members]
                ok = np.all(loc >= 0, axis=1)
                if np.any(ok):
                    sh = np.stack([zs[loc[ok][:, c]] for c in range(members.shape[1])], axis=0)
                    ok2 = np.all(sh.min(axis=0) == 0, axis=1)
                    full = np.zeros(members.shape[0], dtype=bool)
                    full[np.nonzero(ok)[0][ok2]] = True
                    return full, loc
                return np.zeros(members.shape[0], dtype=bool), loc

            b_ok, b_loc = claim(top.bonds)
            a_ok, a_loc = claim(top.angles)
            bonds = b_loc[b_ok]
            bond_r0 = top.bond_r0[b_ok]
            bond_k = top.bond_k[b_ok]
            angles = a_loc[a_ok]
            angle_t0 = top.angle_theta0[a_ok]
            angle_k = top.angle_k[a_ok]
            # Home/halo split for the overlapped force phases: a term goes
            # in ``forces_local`` only when every member is a home atom.
            b_home = np.all(bonds < rp.n_home, axis=1)
            a_home = np.all(angles < rp.n_home, axis=1)

            def pkg(bm, am):
                return {
                    "bonds": bonds[bm],
                    "bond_r0": bond_r0[bm],
                    "bond_k": bond_k[bm],
                    "angles": angles[am],
                    "angle_theta0": angle_t0[am],
                    "angle_k": angle_k[am],
                }

            self._bonded.append(
                {
                    # Flat views of everything this rank claimed (back-compat
                    # for workload accounting); home/halo carry the split.
                    "bonds": bonds,
                    "angles": angles,
                    "mol": top.molecule_of[rp.global_ids],
                    "home": pkg(b_home, a_home),
                    "halo": pkg(~b_home, ~a_home),
                }
            )

    def _needs_ns(self) -> bool:
        if self.cluster is None or self.step_count % self.nstlist == 0:
            return True
        disp = self.system.positions - self._ns_positions
        disp = disp - np.rint(disp / self.system.box) * self.system.box
        max_disp = float(np.sqrt(np.max(np.einsum("ij,ij->i", disp, disp))))
        return max_disp > 0.5 * self.buffer

    # -- forces ---------------------------------------------------------------

    def _exchange_coordinates_overlapped(self, ready) -> None:
        """Coordinate halo that releases ranks to ``ready`` as pulses land.

        ``ready(rank)`` is called exactly once per rank: eagerly, the
        moment the backend reports that rank's last inbound pulse complete
        (``on_pulse``), and in a catch-all sweep after the exchange
        returns for ranks the backend never notified (backends may batch
        or skip notifications — see :class:`repro.comm.base.HaloBackend`).
        """
        n_pulses = self.cluster.plan.n_pulses
        notified = [False] * self.n_ranks
        seen = [0] * self.n_ranks

        def on_pulse(rank: int, pulse_id: int) -> None:
            seen[rank] += 1
            if seen[rank] >= n_pulses and not notified[rank]:
                notified[rank] = True
                ready(rank)

        with TRACER.span(
            "dd.halo_x", cat="comm", backend=getattr(self.backend, "name", "?")
        ):
            self.backend.exchange_coordinates(self.cluster, on_pulse=on_pulse)
        self._publish(self.backend.mutates_coordinates)
        for r in range(self.n_ranks):
            if not notified[r]:
                notified[r] = True
                ready(r)

    def compute_forces(self) -> tuple[float, float, float]:
        """Split force phases around the coordinate halo, then the force halo.

        ``forces_local`` needs no halo data, so concurrent executors run it
        *during* the coordinate exchange; each rank's ``forces_nonlocal``
        is released as soon as that rank's inbound pulses complete.  The
        serial executor (and ``overlap_comm=False``) keeps the strict
        order — local, exchange, non-local — as the bit-exactness
        reference.

        Returns globally summed (E_lj, E_coulomb, E_bonded); each pair
        contributes on exactly one rank and the partial energies are
        summed in fixed rank order (local tuple then non-local tuple), so
        the total is identical for every executor.
        """
        cluster = self.cluster
        with TRACER.span("dd.forces", cat="force", ranks=self.n_ranks):
            local, nonloc = self.executor.run_forces_overlapped(
                self._exchange_coordinates_overlapped, overlap=self.overlap_comm
            )
        e_lj_total = 0.0
        e_coul_total = 0.0
        e_bonded_total = 0.0
        for halves in zip(local, nonloc):
            for e_lj, e_corr, e_coul, e_bonded in halves:
                e_coul_total += e_corr
                e_bonded_total += e_bonded
                e_lj_total += e_lj
                e_coul_total += e_coul
        with TRACER.span("dd.halo_f", cat="comm", backend=getattr(self.backend, "name", "?")):
            self.backend.exchange_forces(cluster)
        if self._pme_session is not None:
            # PP -> PME -> PP round trip for the reciprocal-space part
            # (home atoms only; the mesh term needs no halo).
            with TRACER.span("dd.pme", cat="force"):
                pos_per_pp = []
                q_per_pp = []
                for rp in cluster.plan.ranks:
                    nh = rp.n_home
                    pos_per_pp.append(cluster.local_pos[rp.rank][:nh].astype(np.float64))
                    q_per_pp.append(cluster.local_charges[rp.rank][:nh])
                e_rec, f_parts = self._pme_session.compute(pos_per_pp, q_per_pp)
                for rp, f_rec in zip(cluster.plan.ranks, f_parts):
                    cluster.local_forces[rp.rank][: rp.n_home] += f_rec.astype(
                        cluster.local_forces[rp.rank].dtype
                    )
                e_coul_total += e_rec
        self._publish(self.backend.mutates_forces)
        return e_lj_total, e_coul_total, e_bonded_total

    def gathered_forces(self) -> np.ndarray:
        """Global force array (for verification against the reference)."""
        return gather_forces(self.cluster)

    # -- stepping ---------------------------------------------------------------

    def _dlb_loads(self) -> np.ndarray | None:
        """Per-rank load signal for the DLB controller, or None if absent.

        ``"pairs"`` mode uses the last neighbour search's per-rank pair
        counts — a pure function of the trajectory, so identical runs
        (and the chaos bit-identity oracle) make identical resize
        decisions.  ``"measured"`` drains the executor's per-rank phase
        wall times accumulated since the last search, which also sees
        injected stragglers (chaos ``perturb_phase``) and genuine host
        noise.
        """
        if self.dlb == "pairs":
            if not self.workloads:
                return None
            return np.array(
                [
                    float(w.n_pairs_local + w.n_pairs_nonlocal)
                    for w in self.workloads
                ]
            )
        loads = self.executor.drain_rank_us()
        if loads is None or float(loads.sum()) <= 0.0:
            return None
        return loads

    def _dlb_update(self) -> None:
        """One staggered DLB resize, immediately before a neighbour search.

        The following ``neighbor_search()`` performs the full atom
        redistribution, halo re-plan, and pair-list rebuild the moved
        boundaries require, so invariants never observe a stale
        decomposition.
        """
        loads = self._dlb_loads()
        if loads is None:
            return
        with TRACER.span("dd.dlb", cat="dd", step=self.step_count):
            self._dlb.update(loads)

    def _ensure_ns(self) -> None:
        """Run a neighbour search when the lifecycle demands one."""
        if self._needs_ns():
            if self._dlb is not None and self.cluster is not None:
                self._dlb_update()
            with TRACER.span("dd.ns", cat="dd", step=self.step_count):
                self.neighbor_search()

    def prepare_step(self) -> None:
        """Neighbour search or coordinate halo, as the lifecycle demands.

        Direct-caller convenience (``prepare_step`` + ``compute_forces``):
        performs a strict, fully synchronous coordinate exchange.  The
        stepping loop itself uses the overlapped exchange embedded in
        :meth:`compute_forces`; an extra strict exchange before it is
        idempotent.
        """
        self._ensure_ns()
        with TRACER.span(
            "dd.halo_x", cat="comm", backend=getattr(self.backend, "name", "?")
        ):
            self.backend.exchange_coordinates(self.cluster)
        self._publish(self.backend.mutates_coordinates)

    def step(self) -> StepEnergies:
        """One complete MD step across all ranks."""
        with TRACER.span("dd.step", cat="dd", step=self.step_count):
            self._ensure_ns()
            e_lj, e_coul, e_bonded = self.compute_forces()
            cluster = self.cluster
            kin = 0.0
            with TRACER.span("dd.integrate", cat="update"):
                kins = self.executor.run("integrate")
                for r, plan in enumerate(cluster.plan.ranks):
                    nh = plan.n_home
                    home_ids = plan.global_ids[:nh]
                    self.system.positions[home_ids] = cluster.local_pos[r][:nh]
                    self.system.velocities[home_ids] = cluster.local_vel[r]
                    self.system.forces[home_ids] = cluster.local_forces[r][:nh]
                    kin += kins[r]
        METRICS.counter("dd.steps").inc()
        rec = StepEnergies(
            step=self.step_count, lj=e_lj, coulomb=e_coul, kinetic=kin, bonded=e_bonded
        )
        self.energies.append(rec)
        self.step_count += 1
        return rec

    def run(self, n_steps: int) -> list[StepEnergies]:
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        return [self.step() for _ in range(n_steps)]

    # -- teardown ---------------------------------------------------------------

    def close(self) -> None:
        """Release executor resources (worker processes, shared memory)."""
        executor = getattr(self, "executor", None)
        if executor is not None and not isinstance(executor, str):
            executor.close()

    def __enter__(self) -> "DDSimulator":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# Positional ``backend`` / ``executor`` are deprecated: the documented
# construction forms are keyword registry names / instances
# (``DDSimulator(system, ff, n_ranks=8, backend="nvshmem",
# executor="process")``) or :meth:`DDSimulator.from_spec`.  The shim keeps
# the legacy 5th/6th positional arguments working under a
# ``DeprecationWarning`` for one release.
_dataclass_init = DDSimulator.__init__


def _deprecating_init(self, system, ff, n_ranks=0, grid=None, *legacy, **kwargs):
    if legacy:
        if len(legacy) > 2:
            raise TypeError(
                f"DDSimulator takes at most 6 positional arguments "
                f"({4 + len(legacy)} given)"
            )
        warnings.warn(
            "positional backend/executor arguments to DDSimulator are "
            "deprecated; pass backend=.../executor=... registry names (or "
            "instances), or build via DDSimulator.from_spec()",
            DeprecationWarning,
            stacklevel=2,
        )
        for name, value in zip(("backend", "executor"), legacy):
            if name in kwargs:
                raise TypeError(f"DDSimulator got multiple values for argument '{name}'")
            kwargs[name] = value
    _dataclass_init(self, system, ff, n_ranks=n_ranks, grid=grid, **kwargs)


_deprecating_init.__wrapped__ = _dataclass_init
DDSimulator.__init__ = _deprecating_init
