"""The domain-decomposed MD engine.

Runs the same physics as :class:`repro.md.reference.ReferenceSimulator`, but
distributed over the ranks of a :class:`DomainDecomposition` with halo
exchange delegated to a pluggable communication backend (reference
serialized, MPI-style staged, or NVSHMEM-style fused — see
:mod:`repro.comm`).  Trajectories must match the serial reference to
floating-point accumulation order; the test suite enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dd.decomposition import DomainDecomposition
from repro.dd.exchange import (
    ClusterState,
    build_cluster,
    gather_forces,
    reference_coordinate_exchange,
    reference_force_exchange,
)
from repro.dd.grid import DDGrid, choose_grid
from repro.md.cells import CellList
from repro.md.forcefield import ForceField
from repro.md.integrator import LeapFrogIntegrator, kinetic_energy
from repro.md.nonbonded import NonbondedKernel
from repro.md.reference import StepEnergies
from repro.md.system import MDSystem
from repro.obs.metrics import METRICS
from repro.obs.tracer import TRACER


@dataclass
class RankWorkload:
    """Per-rank work statistics for one neighbour-search interval.

    These feed the performance model: local pairs drive the local non-bonded
    kernel, non-local pairs the non-local kernel, and the pulse sizes the
    communication volumes.
    """

    rank: int
    n_home: int
    n_halo: int
    n_pairs_local: int
    n_pairs_nonlocal: int
    pulse_send_sizes: list[int]


class _ReferenceBackend:
    """Default backend: the synchronous serialized reference exchange."""

    name = "reference"

    def bind(self, cluster: ClusterState) -> None:
        pass

    def exchange_coordinates(self, cluster: ClusterState) -> None:
        reference_coordinate_exchange(cluster)

    def exchange_forces(self, cluster: ClusterState) -> None:
        reference_force_exchange(cluster)


@dataclass
class DDSimulator:
    """Multi-rank MD driver over an in-process cluster."""

    system: MDSystem
    ff: ForceField
    n_ranks: int = 0
    grid: DDGrid | None = None
    backend: object | None = None
    nstlist: int = 20
    buffer: float = 0.1
    dt: float = 0.002
    trim_corners: bool = False
    max_pulses: int = 1
    #: "rf" (reaction field) or "pme" (erfc real space on the PP ranks +
    #: SPME reciprocal through a PP/PME rank-specialized session).
    coulomb: str = "rf"
    pme_grid: tuple[int, int, int] | None = None
    n_pme_ranks: int = 0
    topology: "object | None" = None
    step_count: int = 0
    energies: list[StepEnergies] = field(default_factory=list)

    def __post_init__(self) -> None:
        r_comm = self.ff.cutoff + self.buffer
        if self.grid is None:
            if self.n_ranks < 1:
                raise ValueError("provide either grid or a positive n_ranks")
            self.grid = choose_grid(
                self.n_ranks, self.system.box, r_comm, max_pulses=self.max_pulses
            )
        self.n_ranks = self.grid.n_ranks
        self.dd = DomainDecomposition(
            grid=self.grid, box=self.system.box, r_comm=r_comm,
            max_pulses=self.max_pulses,
        )
        self.backend = self.backend or _ReferenceBackend()
        self._pme_session = None
        if self.coulomb == "pme":
            from repro.md.reference import _default_pme_grid
            from repro.pme.decomposition import PmePpSession
            from repro.pme.spme import optimal_beta

            beta = optimal_beta(self.ff.cutoff)
            grid = self.pme_grid or _default_pme_grid(self.system.box)
            n_pme = self.n_pme_ranks or max(1, self.n_ranks // 4)
            self._pme_session = PmePpSession(
                n_pp=self.n_ranks,
                n_pme=n_pme,
                box=self.system.box,
                grid=grid,
                beta=beta,
                max_atoms_per_rank=int(2.0 * self.system.n_atoms / self.n_ranks) + 64,
            )
            self._kernel = NonbondedKernel(self.ff, coulomb="ewald", ewald_beta=beta)
        elif self.coulomb == "rf":
            self._kernel = NonbondedKernel(self.ff)
        else:
            raise ValueError(f"unknown coulomb mode '{self.coulomb}' (use 'rf' or 'pme')")
        self._integrator = LeapFrogIntegrator(dt=self.dt)
        self._periodic = np.array([self.grid.shape[d] == 1 for d in range(3)])
        self.cluster: ClusterState | None = None
        self._pairs: list[tuple[np.ndarray, np.ndarray]] = []
        self._ns_positions: np.ndarray | None = None
        self.workloads: list[RankWorkload] = []

    # -- neighbour search ---------------------------------------------------

    def _rank_pairs(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """Rank-local pair search over home + halo with the zone rule."""
        plan = self.cluster.plan.ranks[rank]
        pos = self.cluster.local_pos[rank].astype(np.float64)
        r_list = self.dd.r_comm
        lo = np.where(self._periodic, 0.0, pos.min(axis=0) - 1e-9)
        hi = np.where(self._periodic, self.dd.box, pos.max(axis=0) + 1e-9)
        hi = np.maximum(hi, lo + r_list)
        cells = CellList(lo=lo, hi=hi, cutoff=r_list, periodic=self._periodic)
        i, j = cells.pairs_within(pos, r_list)
        # Eighth-shell assignment: compute the pair here iff the elementwise
        # minimum of the two zone shifts is zero (both atoms visible, and no
        # other rank sees the pair with this property).
        zs = plan.zone_shift
        keep = np.all(np.minimum(zs[i], zs[j]) == 0, axis=1)
        return i[keep], j[keep]

    def neighbor_search(self) -> None:
        """Full redistribution: wrap, reassign atoms, rebuild plan and lists."""
        self.cluster = build_cluster(
            self.system, self.dd, trim_corners=self.trim_corners
        )
        self._pairs = [self._rank_pairs(r) for r in range(self.n_ranks)]
        self._assign_bonded()
        self._ns_positions = self.system.positions.copy()
        self.workloads = []
        for r, plan in enumerate(self.cluster.plan.ranks):
            i, j = self._pairs[r]
            local = (i < plan.n_home) & (j < plan.n_home)
            self.workloads.append(
                RankWorkload(
                    rank=r,
                    n_home=plan.n_home,
                    n_halo=plan.n_halo,
                    n_pairs_local=int(np.count_nonzero(local)),
                    n_pairs_nonlocal=int(i.size - np.count_nonzero(local)),
                    pulse_send_sizes=[p.send_size for p in plan.pulses],
                )
            )
        METRICS.counter("dd.ns_builds").inc()
        METRICS.gauge("dd.pairs_local").set(sum(w.n_pairs_local for w in self.workloads))
        METRICS.gauge("dd.pairs_nonlocal").set(
            sum(w.n_pairs_nonlocal for w in self.workloads)
        )
        METRICS.gauge("dd.halo_atoms").set(sum(w.n_halo for w in self.workloads))
        for w in self.workloads:
            for size in w.pulse_send_sizes:
                METRICS.histogram("dd.pulse_send_atoms").observe(size)

    def _assign_bonded(self) -> None:
        """Rank-local bonded lists by the zone rule (exactly-once assignment).

        A bonded interaction is computed on the rank where every member is
        visible and the elementwise minimum of the members' zone shifts is
        zero — the same rule as non-bonded pairs, valid because all members
        lie within the communication cutoff of each other.
        """
        self._bonded = []
        if self.topology is None:
            return
        top = self.topology
        n = self.system.n_atoms
        for rp in self.cluster.plan.ranks:
            g2l = np.full(n, -1, dtype=np.int64)
            g2l[rp.global_ids] = np.arange(rp.n_local)
            zs = rp.zone_shift

            def claim(members):
                loc = g2l[members]
                ok = np.all(loc >= 0, axis=1)
                if np.any(ok):
                    sh = np.stack([zs[loc[ok][:, c]] for c in range(members.shape[1])], axis=0)
                    ok2 = np.all(sh.min(axis=0) == 0, axis=1)
                    full = np.zeros(members.shape[0], dtype=bool)
                    full[np.nonzero(ok)[0][ok2]] = True
                    return full, loc
                return np.zeros(members.shape[0], dtype=bool), loc

            b_ok, b_loc = claim(top.bonds)
            a_ok, a_loc = claim(top.angles)
            self._bonded.append(
                {
                    "bonds": b_loc[b_ok],
                    "bond_r0": top.bond_r0[b_ok],
                    "bond_k": top.bond_k[b_ok],
                    "angles": a_loc[a_ok],
                    "angle_theta0": top.angle_theta0[a_ok],
                    "angle_k": top.angle_k[a_ok],
                    "mol": top.molecule_of[rp.global_ids],
                }
            )

    def _needs_ns(self) -> bool:
        if self.cluster is None or self.step_count % self.nstlist == 0:
            return True
        disp = self.system.positions - self._ns_positions
        disp = disp - np.rint(disp / self.system.box) * self.system.box
        max_disp = float(np.sqrt(np.max(np.einsum("ij,ij->i", disp, disp))))
        return max_disp > 0.5 * self.buffer

    # -- forces ---------------------------------------------------------------

    def compute_forces(self) -> tuple[float, float, float]:
        """Local + non-local forces on every rank, then the force halo.

        Returns globally summed (E_lj, E_coulomb); each pair contributes on
        exactly one rank, so the plain sum is the total.
        """
        cluster = self.cluster
        e_lj_total = 0.0
        e_coul_total = 0.0
        e_bonded_total = 0.0
        nb_span = TRACER.span("dd.nonbonded", cat="force", ranks=self.n_ranks)
        nb_span.__enter__()
        for r in range(self.n_ranks):
            cluster.local_forces[r][:] = 0.0
            i, j = self._pairs[r]
            if self.topology is not None:
                from repro.md.bonded import angle_forces, bond_forces, exclusion_correction

                bd = self._bonded[r]
                mol = bd["mol"]
                excl = mol[i] == mol[j]
                _, e_corr = exclusion_correction(
                    cluster.local_pos[r], i[excl], j[excl],
                    cluster.local_charges[r], self.ff,
                    coulomb=self._kernel.coulomb, ewald_beta=self._kernel.ewald_beta,
                    box=self.dd.box, periodic=self._periodic,
                    out_forces=cluster.local_forces[r],
                )
                e_coul_total += e_corr
                i, j = i[~excl], j[~excl]
                _, e_b = bond_forces(
                    cluster.local_pos[r], bd["bonds"], bd["bond_r0"], bd["bond_k"],
                    box=self.dd.box, periodic=self._periodic,
                    out_forces=cluster.local_forces[r],
                )
                _, e_a = angle_forces(
                    cluster.local_pos[r], bd["angles"], bd["angle_theta0"], bd["angle_k"],
                    box=self.dd.box, periodic=self._periodic,
                    out_forces=cluster.local_forces[r],
                )
                e_bonded_total += e_b + e_a
            _, e_lj, e_coul = self._kernel.compute(
                cluster.local_pos[r],
                i,
                j,
                cluster.local_types[r],
                cluster.local_charges[r],
                box=self.dd.box,
                periodic=self._periodic,
                out_forces=cluster.local_forces[r],
            )
            e_lj_total += e_lj
            e_coul_total += e_coul
        nb_span.__exit__(None, None, None)
        with TRACER.span("dd.halo_f", cat="comm", backend=getattr(self.backend, "name", "?")):
            self.backend.exchange_forces(cluster)
        if self._pme_session is not None:
            # PP -> PME -> PP round trip for the reciprocal-space part
            # (home atoms only; the mesh term needs no halo).
            with TRACER.span("dd.pme", cat="force"):
                pos_per_pp = []
                q_per_pp = []
                for rp in cluster.plan.ranks:
                    nh = rp.n_home
                    pos_per_pp.append(cluster.local_pos[rp.rank][:nh].astype(np.float64))
                    q_per_pp.append(cluster.local_charges[rp.rank][:nh])
                e_rec, f_parts = self._pme_session.compute(pos_per_pp, q_per_pp)
                for rp, f_rec in zip(cluster.plan.ranks, f_parts):
                    cluster.local_forces[rp.rank][: rp.n_home] += f_rec.astype(
                        cluster.local_forces[rp.rank].dtype
                    )
                e_coul_total += e_rec
        return e_lj_total, e_coul_total, e_bonded_total

    def gathered_forces(self) -> np.ndarray:
        """Global force array (for verification against the reference)."""
        return gather_forces(self.cluster)

    # -- stepping ---------------------------------------------------------------

    def prepare_step(self) -> None:
        """Neighbour search or coordinate halo, as the lifecycle demands."""
        if self._needs_ns():
            with TRACER.span("dd.ns", cat="dd", step=self.step_count):
                self.neighbor_search()
                self.backend.bind(self.cluster)
        with TRACER.span(
            "dd.halo_x", cat="comm", backend=getattr(self.backend, "name", "?")
        ):
            self.backend.exchange_coordinates(self.cluster)

    def step(self) -> StepEnergies:
        """One complete MD step across all ranks."""
        with TRACER.span("dd.step", cat="dd", step=self.step_count):
            self.prepare_step()
            e_lj, e_coul, e_bonded = self.compute_forces()
            cluster = self.cluster
            kin = 0.0
            with TRACER.span("dd.integrate", cat="update"):
                for r, plan in enumerate(cluster.plan.ranks):
                    nh = plan.n_home
                    x, v = self._integrator.step(
                        cluster.local_pos[r][:nh],
                        cluster.local_vel[r],
                        cluster.local_forces[r][:nh],
                        cluster.local_masses[r],
                    )
                    cluster.local_pos[r][:nh] = x
                    cluster.local_vel[r] = v
                    home_ids = plan.global_ids[:nh]
                    self.system.positions[home_ids] = x
                    self.system.velocities[home_ids] = v
                    self.system.forces[home_ids] = cluster.local_forces[r][:nh]
                    kin += kinetic_energy(v, cluster.local_masses[r])
        METRICS.counter("dd.steps").inc()
        rec = StepEnergies(
            step=self.step_count, lj=e_lj, coulomb=e_coul, kinetic=kin, bonded=e_bonded
        )
        self.energies.append(rec)
        self.step_count += 1
        return rec

    def run(self, n_steps: int) -> list[StepEnergies]:
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        return [self.step() for _ in range(n_steps)]
