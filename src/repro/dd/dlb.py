"""Dynamic load balancing: imbalance-driven cell-boundary resizing.

GROMACS' answer to DD load imbalance (Páll et al. 2020, Sec. "Dynamic
load balancing") is to resize decomposition cells so slow (overloaded)
domains shrink and fast (underloaded) domains grow, re-measuring after
every move.  This module is that loop for our tensor-product grid:

* :func:`resize_widths` — one damped relaxation step of a single
  dimension's cell widths toward load-proportional sizes, with the
  **cutoff floor** (:meth:`DomainDecomposition.width_floor`) enforced by
  redistributing width from cells above the floor — never by violating
  it.  Pure function; the property tests drive it with random load
  histories.
* :class:`DlbController` — staggers resizing over the decomposed
  dimensions in pulse order (z, then y, then x — one dim per update, the
  "staggered grid constraint": a tensor-product grid can only move whole
  boundary planes, so per-dim moves must not compound within one
  update), aggregates per-rank loads into per-slab loads, installs new
  edges through :meth:`DomainDecomposition.set_boundaries`, and
  publishes the ``dd.dlb.*`` metrics.

The engine calls :meth:`DlbController.update` only immediately before a
neighbour search, so every accepted boundary move is followed by full
atom redistribution, halo re-planning, and pair-list rebuilds by
construction — the invariants (eighth-shell coverage, exactly-once
delivery) never see a half-moved state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dd.decomposition import DomainDecomposition
from repro.obs.metrics import METRICS
from repro.par.imbalance import imbalance_pct

#: Default relaxation factor: each update moves widths halfway to the
#: load-proportional target.  GROMACS damps similarly to avoid
#: oscillation against the measurement noise of per-step timings.
DLB_DAMPING = 0.5

#: Relative width change below which a move is skipped (a rebuild costs
#: more than such a move could ever recover).  Set above the move sizes
#: the converged controller proposes from step-to-step load noise, so a
#: balanced grid goes quiet instead of churning micro-moves — each
#: accepted move forces a redistribution + list rebuild on the next
#: search, which is pure overhead once the imbalance is gone.
DLB_MIN_MOVE = 5e-3

#: Max relative width change per update.  The load model assumes a
#: cell's work density is uniform across it, which is only locally true
#: in inhomogeneous systems — an unbounded step lets a vacuum cell grow
#: far into a dense region in one move and oscillate.  Bounding each
#: step keeps the relaxation inside the regime where the model holds.
DLB_MAX_STEP = 0.25


def resize_widths(
    widths: np.ndarray,
    loads: np.ndarray,
    floor: float,
    damping: float = DLB_DAMPING,
    max_step: float = DLB_MAX_STEP,
    last_move: np.ndarray | None = None,
) -> np.ndarray:
    """One damped resize of one dimension's cell widths toward balance.

    The stationary-load model: a cell's load is proportional to the
    work-density along the dimension times its width, so the balanced
    target width of cell ``i`` is ``(widths[i] / loads[i])``, normalized
    to preserve the total extent.  The new widths move ``damping`` of the
    way to the target, each bounded to a ``max_step`` relative change,
    then the cutoff floor is enforced exactly by water-filling: clamp to
    the floor and rescale only the excess above it, which preserves the
    total and keeps every width >= floor.

    ``last_move`` (the previous update's accepted ``new - widths``, per
    cell) enables the anti-oscillation brake: a cell whose proposed move
    *reverses* direction takes half the step.  At a density interface
    the uniform-density model overshoots in alternating directions — a
    vacuum-priced cell grows into dense material, reprices, shrinks,
    repeats — and the halving turns that limit cycle into geometric
    decay, so the controller's min-move gate can actually stop.

    Total extent, element count, and the floor invariant hold for *any*
    input (the property suite asserts this on random histories); loads
    must be non-negative with a positive sum.
    """
    widths = np.asarray(widths, dtype=np.float64)
    loads = np.asarray(loads, dtype=np.float64)
    if widths.ndim != 1 or widths.shape != loads.shape:
        raise ValueError(
            f"widths/loads must be matching 1-D arrays, got {widths.shape} "
            f"and {loads.shape}"
        )
    if np.any(widths <= 0):
        raise ValueError(f"widths must be positive, got {widths}")
    if np.any(loads < 0) or float(loads.sum()) <= 0.0:
        raise ValueError(f"loads must be non-negative with a positive sum: {loads}")
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    if max_step <= 0.0:
        raise ValueError(f"max_step must be positive, got {max_step}")
    total = float(widths.sum())
    n = widths.size
    if total <= n * floor:
        # The grid is already at (or below) the floor everywhere: no
        # freedom to move anything.
        return widths.copy()
    # Load per unit width ~ local work density; an empty cell would ask
    # for infinite width, so density is floored at a tiny fraction of
    # the mean (the floor clamp bounds the actual growth anyway).
    density = loads / widths
    density = np.maximum(density, 1e-6 * float(density.mean()))
    target = (1.0 / density) / float((1.0 / density).sum()) * total
    new = widths + damping * (target - widths)
    new = np.clip(new, widths * (1.0 - max_step), widths * (1.0 + max_step))
    if last_move is not None:
        last_move = np.asarray(last_move, dtype=np.float64)
        if last_move.shape != widths.shape:
            raise ValueError(
                f"last_move must match widths, got {last_move.shape} "
                f"and {widths.shape}"
            )
        flip = (new - widths) * last_move < 0.0
        new = np.where(flip, widths + 0.5 * (new - widths), new)
    # The per-cell clamp may have changed the sum; restore it before the
    # floor pass so the box extent is always preserved exactly.
    new = new / float(new.sum()) * total
    # Water-filling floor clamp: redistribute the extent above the floor
    # proportionally to each cell's share of it.
    excess = total - n * floor
    free = np.maximum(new - floor, 0.0)
    free_sum = float(free.sum())
    if free_sum <= 0.0:
        # Degenerate (every proposed width at/below floor): split the
        # excess evenly, i.e. fall back to the uniform grid.
        return np.full(n, total / n)
    return floor + free * (excess / free_sum)


@dataclass
class DlbController:
    """Staggered per-dimension DLB driver bound to one decomposition.

    ``update(loads)`` performs at most one dimension's resize per call
    (cycling z -> y -> x over the decomposed dims), so consecutive
    neighbour searches rebalance different dimensions — the
    tensor-product analogue of GROMACS' staggered row updates.
    """

    dd: DomainDecomposition
    damping: float = DLB_DAMPING
    min_move: float = DLB_MIN_MOVE
    #: Dims this controller may resize: decomposed *and* above the floor.
    dims: list[int] = field(init=False)
    #: Total accepted boundary moves (mirrors the ``dd.dlb.adjustments``
    #: counter, kept here for direct assertions).
    adjustments: int = field(init=False, default=0)
    #: Imbalance %% of the last update's input loads, and the model's
    #: prediction after the accepted move (None before the first update).
    last_imbalance_before: float | None = field(init=False, default=None)
    last_imbalance_after: float | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.dims = [
            d
            for d in self.dd.grid.decomposed_dims()
            if float(self.dd.box[d]) > self.dd.grid.shape[d] * self.dd.width_floor(d)
        ]
        self._turn = 0
        #: Per-dim accepted move of the last update (feeds the
        #: anti-oscillation brake in :func:`resize_widths`).
        self._last_move: dict[int, np.ndarray] = {}

    # -- load aggregation ------------------------------------------------------

    def slab_loads(self, loads: np.ndarray, d: int) -> np.ndarray:
        """Per-slab load along dim ``d``: sum of its ranks' loads."""
        loads = np.asarray(loads, dtype=np.float64)
        if loads.shape != (self.dd.grid.n_ranks,):
            raise ValueError(
                f"need one load per rank ({self.dd.grid.n_ranks}), got "
                f"shape {loads.shape}"
            )
        out = np.zeros(self.dd.grid.shape[d])
        for rank in range(self.dd.grid.n_ranks):
            out[self.dd.grid.coords_of_rank(rank)[d]] += loads[rank]
        return out

    # -- the update step -------------------------------------------------------

    def update(self, loads: np.ndarray) -> bool:
        """One staggered DLB pass; True iff boundaries actually moved.

        Must only be called when the caller is about to run a full
        neighbour search (redistribution + halo re-plan + list rebuild).
        """
        if not self.dims:
            return False
        d = self.dims[self._turn % len(self.dims)]
        self._turn += 1
        slab = self.slab_loads(loads, d)
        widths = self.dd.cell_widths(d)
        self.last_imbalance_before = imbalance_pct(
            float(slab.mean()), float(slab.max())
        )
        if float(slab.sum()) <= 0.0:
            return False
        new = resize_widths(
            widths, slab, self.dd.width_floor(d), self.damping,
            last_move=self._last_move.get(d),
        )
        rel_move = float(np.max(np.abs(new - widths)) / widths.mean())
        if rel_move < self.min_move:
            return False
        edges = np.concatenate(([0.0], np.cumsum(new)))
        edges[-1] = float(self.dd.box[d])
        self.dd.set_boundaries(d, edges)
        self._last_move[d] = new - widths
        self.adjustments += 1
        # Stationary-load prediction of the post-move imbalance: load
        # scales with the width each slab now covers.
        predicted = slab / widths * new
        self.last_imbalance_after = imbalance_pct(
            float(predicted.mean()), float(predicted.max())
        )
        METRICS.counter("dd.dlb.adjustments", dim=str(d)).inc()
        METRICS.gauge("dd.dlb.imbalance_before_pct").set(self.last_imbalance_before)
        METRICS.gauge("dd.dlb.imbalance_after_pct").set(self.last_imbalance_after)
        spread = float(new.max() / new.min())
        METRICS.gauge("dd.dlb.boundary_spread", dim=str(d)).set(spread)
        METRICS.histogram("dd.dlb.move_rel").observe(rel_move)
        return True
