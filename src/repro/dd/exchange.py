"""Cluster state and the synchronous reference halo exchange.

The reference exchange is the simplest correct implementation: pulses are
processed strictly in global order, all ranks in lock-step (what the paper
calls the "baseline (serialized pulses)" formulation, Sec. 5.1).  The
communication backends in :mod:`repro.comm` must produce bit-identical
results while exercising their own data paths (staged MPI-style buffers, or
signal-driven fused NVSHMEM-style execution).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dd.decomposition import DomainDecomposition
from repro.dd.halo import HaloExchangePlan, build_halo_plan
from repro.md.system import MDSystem


@dataclass
class ClusterState:
    """Per-rank working arrays for a decomposed system.

    ``local_pos``/``local_forces`` have ``n_local`` rows (home atoms first,
    halo zones appended in pulse order at their ``atom_offset``); velocities
    exist for home atoms only (halo atoms are integrated by their owners).
    """

    system: MDSystem
    dd: DomainDecomposition
    plan: HaloExchangePlan
    local_pos: list[np.ndarray]
    local_vel: list[np.ndarray]
    local_forces: list[np.ndarray]
    local_types: list[np.ndarray]
    local_charges: list[np.ndarray]
    local_masses: list[np.ndarray]

    @property
    def n_ranks(self) -> int:
        return self.dd.grid.n_ranks

    def invalidate_halo_coords(self) -> None:
        """Poison halo coordinate slots so stale reads are caught by tests."""
        for r, plan in enumerate(self.plan.ranks):
            self.local_pos[r][plan.n_home :] = np.nan


def build_cluster(
    system: MDSystem,
    dd: DomainDecomposition,
    trim_corners: bool = False,
    fresh_halo: bool = True,
) -> ClusterState:
    """Decompose ``system`` and materialize per-rank arrays.

    ``fresh_halo=False`` poisons the halo coordinate slots with NaN so that
    tests can prove a backend actually communicates every entry.
    """
    system.wrap()
    plan = build_halo_plan(dd, system.positions.astype(np.float64), trim_corners=trim_corners)
    dtype = system.dtype
    local_pos, local_vel, local_forces = [], [], []
    local_types, local_charges, local_masses = [], [], []
    for rank_plan in plan.ranks:
        pos = rank_plan.positions.astype(dtype)
        local_pos.append(pos)
        local_forces.append(np.zeros_like(pos))
        home_ids = rank_plan.global_ids[: rank_plan.n_home]
        local_vel.append(system.velocities[home_ids].copy())
        local_types.append(system.type_ids[rank_plan.global_ids])
        local_charges.append(system.charges[rank_plan.global_ids])
        local_masses.append(system.masses[home_ids])
    cluster = ClusterState(
        system=system,
        dd=dd,
        plan=plan,
        local_pos=local_pos,
        local_vel=local_vel,
        local_forces=local_forces,
        local_types=local_types,
        local_charges=local_charges,
        local_masses=local_masses,
    )
    if not fresh_halo:
        cluster.invalidate_halo_coords()
    return cluster


# -- reference (serialized) exchanges ---------------------------------------


def reference_coordinate_exchange(cluster: ClusterState, on_pulse=None) -> None:
    """Coordinate halo: pulses strictly in order, all ranks in lock-step.

    ``on_pulse(rank, pulse_id)``, when given, fires for every rank after
    each pulse's deliveries land (lock-step order means every rank's
    inbound pulse ``pid`` is complete at the same point).
    """
    plan = cluster.plan
    for pid in range(plan.n_pulses):
        # Pack everything first (lock-step: sends use pre-pulse state, which
        # is safe because earlier pulses already completed).
        packed: list[np.ndarray] = []
        for rank_plan in plan.ranks:
            p = rank_plan.pulses[pid]
            buf = cluster.local_pos[rank_plan.rank][p.index_map]
            buf = buf + p.coord_shift.astype(buf.dtype)
            packed.append(buf)
        for rank_plan in plan.ranks:
            p = rank_plan.pulses[pid]
            dest = cluster.local_pos[p.send_rank]
            dp = plan.ranks[p.send_rank].pulses[pid]
            if dp.recv_size != p.send_size:
                raise AssertionError(
                    f"pulse {pid}: rank {rank_plan.rank} sends {p.send_size} "
                    f"but rank {p.send_rank} expects {dp.recv_size}"
                )
            dest[dp.atom_offset : dp.atom_offset + dp.recv_size] = packed[rank_plan.rank]
        if on_pulse is not None:
            for rank_plan in plan.ranks:
                on_pulse(rank_plan.rank, pid)


def reference_force_exchange(cluster: ClusterState) -> None:
    """Force halo: reverse sweep, accumulating into the coordinate senders.

    Roles reverse versus coordinates (paper Algorithm 6): the rank that
    received a zone's coordinates now returns the forces accumulated on that
    zone to the rank that sent them, which adds them at its ``index_map``
    positions — possibly into its own halo slots, to be forwarded by an
    earlier (in coordinate order) pulse: the dependency chain handled in
    DEP_MGMT mode.
    """
    plan = cluster.plan
    for pid in range(plan.n_pulses - 1, -1, -1):
        staged: list[np.ndarray] = []
        for rank_plan in plan.ranks:
            p = rank_plan.pulses[pid]
            block = cluster.local_forces[rank_plan.rank][
                p.atom_offset : p.atom_offset + p.recv_size
            ]
            staged.append(block.copy())
        for rank_plan in plan.ranks:
            p = rank_plan.pulses[pid]
            # Forces for the zone this rank received go back to recv_rank,
            # whose own pulse-p index_map says where they accumulate.
            target = p.recv_rank
            tp = plan.ranks[target].pulses[pid]
            buf = staged[rank_plan.rank]
            if buf.shape[0] != tp.send_size:
                raise AssertionError(
                    f"pulse {pid}: force return size {buf.shape[0]} != "
                    f"coordinate send size {tp.send_size}"
                )
            np.add.at(cluster.local_forces[target], tp.index_map, buf)


# -- gathers ------------------------------------------------------------------


def gather_positions(cluster: ClusterState) -> np.ndarray:
    """Reassemble the global position array from per-rank home atoms."""
    out = np.zeros_like(cluster.system.positions)
    seen = np.zeros(cluster.system.n_atoms, dtype=bool)
    for rank_plan in cluster.plan.ranks:
        ids = rank_plan.global_ids[: rank_plan.n_home]
        if np.any(seen[ids]):
            raise AssertionError("atom owned by more than one rank")
        seen[ids] = True
        out[ids] = cluster.local_pos[rank_plan.rank][: rank_plan.n_home]
    if not np.all(seen):
        raise AssertionError("atom owned by no rank")
    return out


def gather_forces(cluster: ClusterState, dtype=np.float64) -> np.ndarray:
    """Reassemble global forces from per-rank *home* entries.

    Must be called after the force halo exchange; halo contributions have
    then been folded back into their owners.
    """
    out = np.zeros((cluster.system.n_atoms, 3), dtype=dtype)
    for rank_plan in cluster.plan.ranks:
        ids = rank_plan.global_ids[: rank_plan.n_home]
        out[ids] = cluster.local_forces[rank_plan.rank][: rank_plan.n_home]
    return out
